package experiments

import (
	"math"
	"testing"

	"macs/internal/lfk"
)

func TestRunKernelLFK1(t *testing.T) {
	cfg := Default()
	k := mustKernel(t, 1)
	r, err := RunKernel(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Validated {
		t.Error("kernel output not validated")
	}
	tma, tmac, tmacs, tp := r.CPFs()
	if tma != 0.6 || tmac != 0.8 {
		t.Errorf("CPFs: MA=%v MAC=%v, want 0.6, 0.8", tma, tmac)
	}
	if math.Abs(tmacs-0.840) > 0.001 {
		t.Errorf("MACS CPF = %v, want 0.840", tmacs)
	}
	if tp < tmacs {
		t.Errorf("measured %v below MACS bound %v", tp, tmacs)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	rows, err := Table2(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Spot-check the paper's MA->MAC deltas: extra loads in 1, 2, 7, 12.
	deltas := map[int]int{1: 1, 2: 1, 7: 6, 12: 1}
	for _, r := range rows {
		want, interesting := deltas[r.ID]
		got := r.MAC.Loads - r.MA.Loads
		if interesting && got != want {
			t.Errorf("lfk%d: MAC-MA load delta = %d, want %d", r.ID, got, want)
		}
		if !interesting && r.ID != 8 && got != 0 {
			t.Errorf("lfk%d: unexpected load delta %d", r.ID, got)
		}
	}
}

func TestTable3Hierarchy(t *testing.T) {
	rows, err := Table3(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.TMA > r.TMAC+1e-9 || r.TMAC > r.TMACS+1e-9 {
			t.Errorf("lfk%d: hierarchy violated: %v %v %v", r.ID, r.TMA, r.TMAC, r.TMACS)
		}
		if r.TM > r.TMp+1e-9 || r.TF > r.TFp+1e-9 {
			t.Errorf("lfk%d: MAC components below MA: %+v", r.ID, r)
		}
		// Reduced bounds cannot exceed the full bound... they can match.
		if r.TMACSf > r.TMACS+1e-9 || r.TMACSm > r.TMACS+1e-9 {
			t.Errorf("lfk%d: reduced bound above full MACS: %+v", r.ID, r)
		}
	}
}

func TestTable4ShapeAgainstPaper(t *testing.T) {
	t4, err := RunTable4(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range t4.Rows {
		// Bound CPFs must be close to the paper (same model, same
		// compiler behaviours).
		if math.Abs(r.TMA-r.Paper.TMA) > 0.001 {
			t.Errorf("lfk%d: t_MA = %.3f, paper %.3f", r.ID, r.TMA, r.Paper.TMA)
		}
		if math.Abs(r.TMAC-r.Paper.TMAC) > 0.001 {
			t.Errorf("lfk%d: t_MAC = %.3f, paper %.3f", r.ID, r.TMAC, r.Paper.TMAC)
		}
		if relErr(r.TMACS, r.Paper.TMACS) > 0.20 {
			t.Errorf("lfk%d: t_MACS = %.3f, paper %.3f (>20%% off)", r.ID, r.TMACS, r.Paper.TMACS)
		}
		// Measured within 2x of the paper's machine (ours is a simulator).
		if relErr(r.TP, r.Paper.TP) > 1.0 {
			t.Errorf("lfk%d: t_p = %.3f, paper %.3f", r.ID, r.TP, r.Paper.TP)
		}
		// The hierarchy explains performance: MACS explains a meaningful
		// share of t_p everywhere (the paper's floor is LFK6 at 46%; our
		// scalar outer-loop code is more naive than fc's, so allow 20%).
		if r.PctMACS < 0.20 || r.PctMACS > 1.001 {
			t.Errorf("lfk%d: MACS explains %.1f%% of t_p", r.ID, 100*r.PctMACS)
		}
	}
	// Who wins: LFK2 and LFK6 are the two worst kernels (the paper's two
	// outliers: multiple-exit cascade and short-vector recurrence), LFK7
	// among the best (CPF).
	byID := map[int]Table4Row{}
	for _, r := range t4.Rows {
		byID[r.ID] = r
	}
	worst2 := math.Max(byID[2].TP, byID[6].TP)
	for _, r := range t4.Rows {
		if r.ID != 2 && r.ID != 6 && r.TP > worst2 {
			t.Errorf("lfk%d measured CPF %.3f above LFK2/LFK6's %.3f (they should be the outliers)", r.ID, r.TP, worst2)
		}
	}
	if byID[7].TP > 1.0 {
		t.Errorf("LFK7 CPF = %.3f, should be well under 1.0", byID[7].TP)
	}
	// MFLOPS ordering: MA fastest claim, measured slowest.
	if !(t4.MFLOPS[0] >= t4.MFLOPS[1] && t4.MFLOPS[1] >= t4.MFLOPS[2] && t4.MFLOPS[2] >= t4.MFLOPS[3]) {
		t.Errorf("MFLOPS not monotone: %v", t4.MFLOPS)
	}
}

func TestTable5Relations(t *testing.T) {
	rows, err := RunTable5(Default())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// Measurements sit at or above their bounds.
		if r.TX < r.TMACSf-0.01 {
			t.Errorf("lfk%d: t_x %.2f below t_MACS^f %.2f", r.ID, r.TX, r.TMACSf)
		}
		if r.TA < r.TMACSm-0.01 {
			t.Errorf("lfk%d: t_a %.2f below t_MACS^m %.2f", r.ID, r.TA, r.TMACSm)
		}
		// Eq. 18: max(t_x, t_a) <= t_p <= t_x + t_a (small slack for the
		// scalar work shared between the A and X codes).
		if r.TP+0.05 < math.Max(r.TX, r.TA) {
			t.Errorf("lfk%d: t_p %.2f below max(t_x=%.2f, t_a=%.2f)", r.ID, r.TP, r.TX, r.TA)
		}
		if r.TP > r.TX+r.TA+0.05 {
			t.Errorf("lfk%d: t_p %.2f above t_x+t_a=%.2f", r.ID, r.TP, r.TX+r.TA)
		}
	}
}

func TestFigure2(t *testing.T) {
	fig, err := RunFigure2(Default())
	if err != nil {
		t.Fatal(err)
	}
	if fig.ChainedCycles < 160 || fig.ChainedCycles > 175 {
		t.Errorf("chained = %d, want about 162", fig.ChainedCycles)
	}
	if fig.UnchainedCycles < 410 || fig.UnchainedCycles > 435 {
		t.Errorf("unchained = %d, want about 422", fig.UnchainedCycles)
	}
	if fig.SteadyChime < 131 || fig.SteadyChime > 134 {
		t.Errorf("steady chime = %.2f, want 132", fig.SteadyChime)
	}
	if len(fig.Events) != 3 {
		t.Fatalf("trace has %d events, want 3", len(fig.Events))
	}
	// Chaining order: add starts after the load's first result, the mul
	// after the add's.
	ld, add, mul := fig.Events[0], fig.Events[1], fig.Events[2]
	if add.Start < ld.FirstResult || mul.Start < add.FirstResult {
		t.Error("chaining order violated in trace")
	}
}

func TestFigure3Contention(t *testing.T) {
	cfg := Default()
	cfg.MultiSlowdown = 1.45 // pin for test determinism
	rows, slow, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow != 1.45 {
		t.Errorf("slowdown = %v, want pinned 1.45", slow)
	}
	for _, r := range rows {
		if r.Multi < r.Single {
			t.Errorf("lfk%d: multi-process CPF %.3f below single %.3f", r.ID, r.Multi, r.Single)
		}
	}
	// Memory-bound kernels degrade noticeably; the degradation is partly
	// masked (paper: performance does not degrade proportionally).
	var anyBig bool
	for _, r := range rows {
		ratio := r.Multi / r.Single
		if ratio > 1.15 {
			anyBig = true
		}
		if ratio > 1.6 {
			t.Errorf("lfk%d: contention ratio %.2f exceeds the raw slowdown", r.ID, ratio)
		}
	}
	if !anyBig {
		t.Error("no kernel shows noticeable contention degradation")
	}
}

func TestDerivedContentionSlowdownInRange(t *testing.T) {
	cfg := Default()
	cfg.MultiSlowdown = 0 // derive from the arbiter simulation
	_, slow, err := RunFigure3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: one access per 56-64 ns vs 40 ns peak -> 1.4x-1.6x; our
	// arbiter lands in the same neighborhood.
	if slow < 1.2 || slow > 1.8 {
		t.Errorf("derived contention slowdown = %.2f, want about 1.4-1.7", slow)
	}
}

func relErr(got, want float64) float64 {
	if want == 0 {
		return 0
	}
	return math.Abs(got-want) / want
}

func mustKernel(t *testing.T, id int) *lfk.Kernel {
	t.Helper()
	k, err := lfk.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return k
}
