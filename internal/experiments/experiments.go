// Package experiments regenerates every table and figure of the paper's
// evaluation: Table 1 (calibrated instruction timings), Table 2 (LFK
// workloads), Table 3 (component bounds), Table 4 (bounds vs measured
// CPF with harmonic-mean MFLOPS), Table 5 (A/X measurements), Figure 2
// (chaining/tailgating timeline) and Figure 3 (bounds vs single- and
// multi-process measurements).
package experiments

import (
	"fmt"

	"macs/internal/asm"
	"macs/internal/ax"
	"macs/internal/calib"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/depgraph"
	"macs/internal/lfk"
	"macs/internal/mem"
	"macs/internal/par"
	"macs/internal/vm"
)

// Config selects the machine and compiler configuration for a run.
type Config struct {
	VM       vm.Config
	Compiler compiler.Options
	// MultiSlowdown is the memory slowdown applied for the Figure 3
	// multi-process bars; <=0 derives it from the bank-arbiter contention
	// simulation of four different programs.
	MultiSlowdown float64
	// Parallel is the sweep fan-out: how many kernels RunAll and the
	// table generators process concurrently, each on its own simulator.
	// 0 or 1 runs sequentially (the historical behavior); n > 1 uses n
	// workers; negative uses one worker per core.
	Parallel int
}

// workers maps the Parallel knob onto a worker count for par.ForEach.
func (c Config) workers() int {
	if c.Parallel == 0 {
		return 1
	}
	return par.Workers(c.Parallel)
}

// Default returns the standard experiment configuration.
func Default() Config {
	return Config{
		VM:       vm.DefaultConfig(),
		Compiler: compiler.DefaultOptions(),
	}
}

// KernelResult bundles everything measured and modeled for one kernel.
type KernelResult struct {
	Kernel *lfk.Kernel
	// Analysis is the MA/MAC/MACS hierarchy at VL = 128.
	Analysis core.Analysis
	// Cycles is the measured single-process run time; AX carries the
	// A-process and X-process run times.
	Cycles int64
	AX     ax.Measurement
	// Stats is the full simulator outcome of the single-process run,
	// including the stall-attribution ledger (Stats.Attr).
	Stats vm.Stats
	// Validated records that the run's numerical output matched the Go
	// reference implementation.
	Validated bool
}

// CPLs returns (t_MA, t_MAC, t_MACS, t_p) in cycles per loop iteration.
func (r KernelResult) CPLs() (tma, tmac, tmacs, tp float64) {
	return r.Analysis.TMA, r.Analysis.TMAC, r.Analysis.MACS.CPL,
		r.Kernel.CPL(r.Cycles)
}

// CPFs returns the same hierarchy in cycles per flop.
func (r KernelResult) CPFs() (tma, tmac, tmacs, tp float64) {
	f := float64(r.Kernel.FlopsPerIteration())
	tma, tmac, tmacs, tp = r.CPLs()
	return tma / f, tmac / f, tmacs / f, tp / f
}

// RunKernel compiles, analyzes, measures and validates one kernel.
func RunKernel(k *lfk.Kernel, cfg Config) (KernelResult, error) {
	res := KernelResult{Kernel: k}
	c, err := lfk.Compile(k, cfg.Compiler)
	if err != nil {
		return res, err
	}
	loop, ok := asm.InnerVectorLoop(c.Program)
	if !ok {
		return res, fmt.Errorf("experiments: lfk%d has no vector loop", k.ID)
	}
	res.Analysis = core.Analyze(k.Paper.MA, loop.Body, cfg.VM.VLMax, cfg.VM.Rules)
	if cp, _, ok := depgraph.Analyze(c.Program, cfg.VM.VLMax, depgraph.DefaultParams()); ok {
		res.Analysis.TCP = cp.CPL
	}
	st, cpu, err := c.Run(cfg.VM)
	if err != nil {
		return res, err
	}
	if err := c.Validate(cpu); err != nil {
		return res, err
	}
	res.Validated = true
	res.Cycles = st.Cycles
	res.Stats = st
	res.AX, err = ax.Measure(c.Program, cfg.VM, c.PrimeData)
	if err != nil {
		return res, err
	}
	return res, nil
}

// RunAll measures every kernel of the case study. With cfg.Parallel > 1
// kernels run concurrently, one simulator per goroutine; results are
// ordered by kernel regardless of fan-out.
func RunAll(cfg Config) ([]KernelResult, error) {
	ks := lfk.All()
	out := make([]KernelResult, len(ks))
	err := par.ForEach(cfg.workers(), len(ks), func(i int) error {
		r, err := RunKernel(ks[i], cfg)
		if err != nil {
			return fmt.Errorf("lfk%d: %w", ks[i].ID, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table1 regenerates the vector instruction timing table from calibration
// loops run on the simulated machine, fanning out per cfg.Parallel.
func Table1(cfg Config) ([]calib.Result, error) {
	return calib.CalibrateAllN(cfg.VM, cfg.workers())
}

// Table2Row is one kernel's MA and MAC workload.
type Table2Row struct {
	ID      int
	MA, MAC core.Workload
}

// Table2 regenerates the LFK workload table.
func Table2(cfg Config) ([]Table2Row, error) {
	ks := lfk.All()
	rows := make([]Table2Row, len(ks))
	err := par.ForEach(cfg.workers(), len(ks), func(i int) error {
		k := ks[i]
		c, err := lfk.Compile(k, cfg.Compiler)
		if err != nil {
			return err
		}
		loop, ok := asm.InnerVectorLoop(c.Program)
		if !ok {
			return fmt.Errorf("lfk%d: no vector loop", k.ID)
		}
		ma, err := compiler.MAWorkload(k.Source)
		if err != nil {
			return err
		}
		rows[i] = Table2Row{
			ID:  k.ID,
			MA:  ma,
			MAC: core.WorkloadFromAssembly(loop.Body),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table3Row is one kernel's component and full bounds in CPL.
type Table3Row struct {
	ID               int
	TM, TMp, TMACSm  float64 // memory: MA, MAC, reduced MACS
	TF, TFp, TMACSf  float64 // floating point: MA, MAC, reduced MACS
	TMA, TMAC, TMACS float64
}

// Table3 regenerates the performance-bounds table.
func Table3(cfg Config) ([]Table3Row, error) {
	ks := lfk.All()
	rows := make([]Table3Row, len(ks))
	err := par.ForEach(cfg.workers(), len(ks), func(i int) error {
		k := ks[i]
		c, err := lfk.Compile(k, cfg.Compiler)
		if err != nil {
			return err
		}
		loop, _ := asm.InnerVectorLoop(c.Program)
		a := core.Analyze(k.Paper.MA, loop.Body, cfg.VM.VLMax, cfg.VM.Rules)
		rows[i] = Table3Row{
			ID:     k.ID,
			TM:     a.MA.TM(),
			TMp:    a.MAC.TM(),
			TMACSm: a.MACSM.CPL,
			TF:     a.MA.TF(),
			TFp:    a.MAC.TF(),
			TMACSf: a.MACSF.CPL,
			TMA:    a.TMA,
			TMAC:   a.TMAC,
			TMACS:  a.MACS.CPL,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// Table4Row compares the bounds hierarchy with measured performance for
// one kernel, in cycles per flop.
type Table4Row struct {
	ID                     int
	TMA, TMAC, TMACS, TP   float64
	PctMA, PctMAC, PctMACS float64 // bound / measured
	Paper                  lfk.PaperRow
}

// Table4 is the full comparison with averages and harmonic-mean MFLOPS.
type Table4 struct {
	Rows   []Table4Row
	Avg    [4]float64 // average CPF: MA, MAC, MACS, measured
	MFLOPS [4]float64
}

// RunTable4 regenerates the bounds-vs-measured comparison.
func RunTable4(cfg Config) (Table4, error) {
	results, err := RunAll(cfg)
	if err != nil {
		return Table4{}, err
	}
	return table4From(results), nil
}

func table4From(results []KernelResult) Table4 {
	var t Table4
	var sums [4]float64
	for _, r := range results {
		tma, tmac, tmacs, tp := r.CPFs()
		row := Table4Row{
			ID: r.Kernel.ID, TMA: tma, TMAC: tmac, TMACS: tmacs, TP: tp,
			PctMA: tma / tp, PctMAC: tmac / tp, PctMACS: tmacs / tp,
			Paper: r.Kernel.Paper,
		}
		t.Rows = append(t.Rows, row)
		for i, v := range []float64{tma, tmac, tmacs, tp} {
			sums[i] += v
		}
	}
	n := float64(len(results))
	for i := range sums {
		t.Avg[i] = sums[i] / n
		t.MFLOPS[i] = core.HarmonicMeanMFLOPS([]float64{t.Avg[i]})
	}
	return t
}

// Table5Row is one kernel's MACS bounds and measurements in CPL:
// (t_p, t_MACS, t_x, t_MACS^f, t_a, t_MACS^m), the paper's Table 5.
type Table5Row struct {
	ID         int
	TP, TMACS  float64
	TX, TMACSf float64
	TA, TMACSm float64
}

// RunTable5 regenerates the A/X measurement table.
func RunTable5(cfg Config) ([]Table5Row, error) {
	results, err := RunAll(cfg)
	if err != nil {
		return nil, err
	}
	return table5From(results), nil
}

func table5From(results []KernelResult) []Table5Row {
	var rows []Table5Row
	for _, r := range results {
		k := r.Kernel
		rows = append(rows, Table5Row{
			ID:     k.ID,
			TP:     k.CPL(r.AX.TP),
			TMACS:  r.Analysis.MACS.CPL,
			TX:     k.CPL(r.AX.TX),
			TMACSf: r.Analysis.MACSF.CPL,
			TA:     k.CPL(r.AX.TA),
			TMACSm: r.Analysis.MACSM.CPL,
		})
	}
	return rows
}

// Hierarchy is the Figure 1 view for one kernel: every level of the
// bounds-and-measurements hierarchy in CPL, plus the dependence
// critical-path bound t_CP (zero when no per-element claim holds).
type Hierarchy struct {
	ID               int
	TMA, TMAC, TMACS float64
	TCP              float64
	TMACSf, TMACSm   float64
	TX, TA, TP       float64
}

// Figure1 renders the hierarchy data for every kernel.
func Figure1(cfg Config) ([]Hierarchy, error) {
	results, err := RunAll(cfg)
	if err != nil {
		return nil, err
	}
	var out []Hierarchy
	for _, r := range results {
		k := r.Kernel
		out = append(out, Hierarchy{
			ID:     k.ID,
			TMA:    r.Analysis.TMA,
			TMAC:   r.Analysis.TMAC,
			TMACS:  r.Analysis.MACS.CPL,
			TCP:    r.Analysis.TCP,
			TMACSf: r.Analysis.MACSF.CPL,
			TMACSm: r.Analysis.MACSM.CPL,
			TX:     k.CPL(r.AX.TX),
			TA:     k.CPL(r.AX.TA),
			TP:     k.CPL(r.AX.TP),
		})
	}
	return out, nil
}

// Figure2 reproduces the chaining walkthrough: the chained ld/add/mul
// chime (162 cycles in the paper), the unchained equivalent (422), the
// steady-state chime cost (VL + bubbles), and the instruction timeline.
type Figure2 struct {
	ChainedCycles   int64
	UnchainedCycles int64
	SteadyChime     float64
	Events          []vm.TraceEvent
}

// RunFigure2 measures the Figure 2 scenario on the simulator.
func RunFigure2(cfg Config) (Figure2, error) {
	src := `
.data a 2048
	mov #8,vs
	mov #128,s0
	mov s0,vl
	ld.l a(a0),v0
	add.d v0,v1,v2
	mul.d v2,v3,v5
`
	var fig Figure2
	run := func(c vm.Config) (int64, []vm.TraceEvent, error) {
		p, err := asm.Parse(src)
		if err != nil {
			return 0, nil, err
		}
		cpu := vm.New(c)
		if err := cpu.Load(p); err != nil {
			return 0, nil, err
		}
		st, err := cpu.Run()
		if err != nil {
			return 0, nil, err
		}
		return st.Cycles, cpu.Trace(), nil
	}
	c := cfg.VM
	c.RefreshStalls = false
	c.Trace = true
	var err error
	if fig.ChainedCycles, fig.Events, err = run(c); err != nil {
		return fig, err
	}
	c2 := c
	c2.Rules.Chaining = false
	if fig.UnchainedCycles, _, err = run(c2); err != nil {
		return fig, err
	}
	fig.SteadyChime, err = calib.ChimeTime([]string{
		"ld.l arr(a0),v2", "mul.d v2,v1,v0", "add.d v0,v3,v5",
	}, c)
	return fig, err
}

// Figure3Row holds one kernel's bars: the bounds and the measured CPF on
// an idle machine and on a loaded machine (multi-process contention).
type Figure3Row struct {
	ID               int
	TMA, TMAC, TMACS float64
	Single, Multi    float64
}

// RunFigure3 regenerates the Figure 3 data. The multi-process bars rerun
// every kernel with the memory port slowed by the contention factor
// obtained from the four-CPU bank-arbiter simulation (paper §4.2: one
// access per 56-64 ns instead of 40 ns).
func RunFigure3(cfg Config) ([]Figure3Row, float64, error) {
	slow := cfg.MultiSlowdown
	if slow <= 0 {
		slow = mem.ContentionSlowdown(mem.DefaultConfig(), 4, true, 4000)
	}
	single, err := RunAll(cfg)
	if err != nil {
		return nil, 0, err
	}
	loaded := cfg
	loaded.VM.MemSlowdown = slow
	multi, err := RunAll(loaded)
	if err != nil {
		return nil, 0, err
	}
	var rows []Figure3Row
	for i, r := range single {
		tma, tmac, tmacs, tp := r.CPFs()
		_, _, _, tpm := multi[i].CPFs()
		rows = append(rows, Figure3Row{
			ID: r.Kernel.ID, TMA: tma, TMAC: tmac, TMACS: tmacs,
			Single: tp, Multi: tpm,
		})
	}
	return rows, slow, nil
}
