package experiments

import (
	"fmt"

	"macs/internal/advisor"
	"macs/internal/asm"
	"macs/internal/core"
	"macs/internal/lfk"
)

// ExtendedRow compares the plain MACS bound, the short-vector extended
// bound t_MACS+ and the decomposition-aware bound t_MACSD with measured
// performance (all CPL). This is this repository's extension experiment:
// the paper names strip-mining, startup, reductions and outer scalar
// code as the causes of its biggest unexplained gaps (§4.4) and proposes
// the D degree of freedom (§3.1); here both are modeled.
type ExtendedRow struct {
	ID                   int
	TMACS, TPlus, TD, TP float64
	PctMACS, PctPlus     float64 // bound / measured
}

// outerScalarEstimate is the scalar-op budget charged per inner-loop
// entry by the extended bound (count computation, base setup, epilogue).
const outerScalarEstimate = 30

// RunExtended computes the extension table for every kernel.
func RunExtended(cfg Config) ([]ExtendedRow, error) {
	results, err := RunAll(cfg)
	if err != nil {
		return nil, err
	}
	var rows []ExtendedRow
	for _, r := range results {
		k := r.Kernel
		c, err := lfk.Compile(k, cfg.Compiler)
		if err != nil {
			return nil, err
		}
		loop, ok := asm.InnerVectorLoop(c.Program)
		if !ok {
			return nil, fmt.Errorf("lfk%d: no vector loop", k.ID)
		}
		shape := core.LoopShape{Elements: k.Elements, Entries: k.Entries, EntryLengths: k.EntryLengths, OuterScalarOps: outerScalarEstimate}
		ext := core.ExtendedBound(loop.Body, shape, cfg.VM.Rules)
		tp := k.CPL(r.Cycles)
		row := ExtendedRow{
			ID:    k.ID,
			TMACS: r.Analysis.MACS.CPL,
			TPlus: ext.CPL,
			TD:    core.MACSDBound(loop.Body, cfg.VM.VLMax, cfg.VM.Rules).CPL,
			TP:    tp,
		}
		if tp > 0 {
			row.PctMACS = row.TMACS / tp
			row.PctPlus = row.TPlus / tp
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// DiagnoseAll runs the §4.4 advisor over every kernel.
func DiagnoseAll(cfg Config) (map[int]advisor.Diagnosis, error) {
	results, err := RunAll(cfg)
	if err != nil {
		return nil, err
	}
	out := make(map[int]advisor.Diagnosis, len(results))
	for i := range results {
		r := &results[i]
		k := r.Kernel
		out[k.ID] = advisor.Diagnose(advisor.Inputs{
			Analysis: r.Analysis,
			TP:       k.CPL(r.AX.TP),
			TA:       k.CPL(r.AX.TA),
			TX:       k.CPL(r.AX.TX),
			Attr:     &r.Stats.Attr,
		})
	}
	return out, nil
}
