package experiments

import (
	"fmt"

	"macs/internal/lfk"
	"macs/internal/vm"
)

// ClusterRow reports one kernel's multi-process behaviour measured by
// true four-CPU co-simulation over the shared 32 banks, rather than by
// the derived slowdown factor RunFigure3 applies.
type ClusterRow struct {
	ID int
	// SoloCPL is the single-CPU run; ClusterCPL is the slowest of four
	// CPUs running the same kernel concurrently.
	SoloCPL, ClusterCPL float64
	// Degradation is ClusterCPL/SoloCPL.
	Degradation float64
}

// RunClusterContention co-simulates four copies of every kernel on the
// shared banks (the paper's same-executable case: processes fall into
// lockstep and lose only 5-10%).
func RunClusterContention(cfg Config) ([]ClusterRow, error) {
	var rows []ClusterRow
	for _, k := range lfk.All() {
		c, err := lfk.Compile(k, cfg.Compiler)
		if err != nil {
			return nil, err
		}
		soloStats, _, err := c.Run(cfg.VM)
		if err != nil {
			return nil, err
		}

		cfgs := []vm.Config{cfg.VM, cfg.VM, cfg.VM, cfg.VM}
		cl := vm.NewCluster(cfgs)
		for i := 0; i < cl.Size(); i++ {
			cpu := cl.CPU(i)
			if err := cpu.Load(c.Program); err != nil {
				return nil, err
			}
			if err := c.PrimeData(cpu); err != nil {
				return nil, err
			}
		}
		stats, err := cl.Run()
		if err != nil {
			return nil, fmt.Errorf("lfk%d: %w", k.ID, err)
		}
		worst := int64(0)
		for _, st := range stats {
			if st.Cycles > worst {
				worst = st.Cycles
			}
		}
		row := ClusterRow{
			ID:         k.ID,
			SoloCPL:    k.CPL(soloStats.Cycles),
			ClusterCPL: k.CPL(worst),
		}
		row.Degradation = row.ClusterCPL / row.SoloCPL
		rows = append(rows, row)
	}
	return rows, nil
}
