package experiments

import (
	"testing"

	"macs/internal/advisor"
)

func TestRunExtended(t *testing.T) {
	rows, err := RunExtended(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		// Extended never falls below the plain bound and never exceeds
		// the measurement by much (it is still a bound on deliverables,
		// not a fit).
		if r.TPlus < r.TMACS-1e-9 {
			t.Errorf("lfk%d: t_MACS+ %.3f below t_MACS %.3f", r.ID, r.TPlus, r.TMACS)
		}
		if r.TPlus > r.TP*1.05 {
			t.Errorf("lfk%d: t_MACS+ %.3f above measured %.3f", r.ID, r.TPlus, r.TP)
		}
		// Every kernel in this suite is conflict-free: MACSD == MACS.
		if r.TD != r.TMACS {
			t.Errorf("lfk%d: t_MACSD %.3f != t_MACS %.3f (all strides conflict-free)", r.ID, r.TD, r.TMACS)
		}
	}
	// The headline claim: the extension explains the short-vector
	// kernels far better than the plain bound.
	byID := map[int]ExtendedRow{}
	for _, r := range rows {
		byID[r.ID] = r
	}
	for _, id := range []int{4, 6} {
		r := byID[id]
		if r.PctPlus < r.PctMACS+0.25 {
			t.Errorf("lfk%d: extension gain too small: %%MACS %.2f -> %%MACS+ %.2f", id, r.PctMACS, r.PctPlus)
		}
	}
	if byID[3].PctPlus < 0.9 {
		t.Errorf("lfk3: t_MACS+ should explain >90%%, got %.2f", byID[3].PctPlus)
	}
}

func TestDiagnoseAll(t *testing.T) {
	ds, err := DiagnoseAll(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 10 {
		t.Fatalf("diagnoses = %d, want 10", len(ds))
	}
	// The paper's headline narratives (§4.4).
	if !ds[1].Has(advisor.CauseCompilerWork) {
		t.Error("LFK1 missing compiler-inserted-work")
	}
	if !ds[8].Has(advisor.CauseScalarSplit) {
		t.Error("LFK8 missing scalar-split")
	}
	if !ds[6].Has(advisor.CauseUnmodeledScalar) {
		t.Error("LFK6 missing unmodeled-scalar")
	}
	if ds[10].Primary() != advisor.CauseNearBound && !ds[10].Has(advisor.CauseNearBound) {
		t.Error("LFK10 should be near-bound")
	}
}

func TestRunClusterContention(t *testing.T) {
	rows, err := RunClusterContention(Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	for _, r := range rows {
		if r.Degradation < 0.999 {
			t.Errorf("lfk%d: cluster faster than solo (%.3f)", r.ID, r.Degradation)
		}
		// Same-executable lockstep (paper: 5-10%); allow up to 35% for
		// the memory-saturating kernels.
		if r.Degradation > 1.35 {
			t.Errorf("lfk%d: lockstep degradation %.2f implausibly high", r.ID, r.Degradation)
		}
		t.Logf("lfk%d: solo %.2f CPL, 4-copy cluster %.2f CPL (%.1f%%)",
			r.ID, r.SoloCPL, r.ClusterCPL, 100*(r.Degradation-1))
	}
}
