package core

import (
	"math"
	"testing"

	"macs/internal/asm"
	"macs/internal/isa"
)

// lfk1Body is the paper's compiled inner loop for LFK1 (§3.5).
const lfk1Src = `
.data space1 65536
L7:
	mov s0,vl
	ld.l space1+40120(a5),v0
	mul.d v0,s1,v1
	ld.l space1+40128(a5),v2
	mul.d v2,s3,v0
	add.d v1,v0,v3
	ld.l space1+32032(a5),v1
	mul.d v1,v3,v2
	add.d v2,s7,v0
	st.l v0,space1+24024(a5)
	add.w #1024,a5
	sub.w #128,s0
	lt.w #0,s0
	jbrs.t L7
`

func lfk1Body(t *testing.T) []isa.Instr {
	t.Helper()
	p, err := asm.Parse(lfk1Src)
	if err != nil {
		t.Fatal(err)
	}
	return p.Instrs
}

// lfk1MA is the high-level LFK1 workload: X(k) = Q + Y(k)*(R*ZX(k+10) +
// T*ZX(k+11)) has 2 adds, 3 multiplies; with perfect index analysis the two
// ZX references share one load stream, plus Y, plus the store of X.
var lfk1MA = Workload{FA: 2, FM: 3, Loads: 2, Stores: 1}

func TestWorkloadBounds(t *testing.T) {
	// LFK1 MA: t_f = max(2,3) = 3, t_m = 3, bound = 3 CPL = 0.6 CPF.
	if got := lfk1MA.TF(); got != 3 {
		t.Errorf("TF = %v, want 3", got)
	}
	if got := lfk1MA.TM(); got != 3 {
		t.Errorf("TM = %v, want 3", got)
	}
	if got := lfk1MA.Bound(); got != 3 {
		t.Errorf("MA bound = %v, want 3", got)
	}
	if got := CPF(lfk1MA.Bound(), lfk1MA); got != 0.6 {
		t.Errorf("MA CPF = %v, want 0.6", got)
	}
}

func TestWorkloadFromAssemblyLFK1(t *testing.T) {
	w := WorkloadFromAssembly(lfk1Body(t))
	want := Workload{FA: 2, FM: 3, Loads: 3, Stores: 1}
	if w != want {
		t.Fatalf("MAC workload = %+v, want %+v", w, want)
	}
	// t_MAC = max(3, 4) = 4 CPL = 0.8 CPF (paper §3.5).
	if got := w.Bound(); got != 4 {
		t.Errorf("MAC bound = %v, want 4", got)
	}
	if got := CPF(w.Bound(), lfk1MA); got != 0.8 {
		t.Errorf("MAC CPF = %v, want 0.8", got)
	}
}

func TestPartitionLFK1(t *testing.T) {
	chimes := Partition(lfk1Body(t), DefaultRules())
	if len(chimes) != 4 {
		t.Fatalf("LFK1 partitions into %d chimes, want 4", len(chimes))
	}
	wantSizes := []int{2, 3, 3, 1}
	for i, c := range chimes {
		if len(c.Members) != wantSizes[i] {
			t.Errorf("chime %d has %d members, want %d (%v)", i+1, len(c.Members), wantSizes[i], c.Members)
		}
		if !c.HasMem {
			t.Errorf("chime %d should contain a memory operation", i+1)
		}
	}
	// Paper §3.5 chime costs: 131, 132, 132, 132 cycles.
	wantCosts := []float64{131, 132, 132, 132}
	for i, c := range chimes {
		if got := c.Cost(128, DefaultRules()); got != wantCosts[i] {
			t.Errorf("chime %d cost = %v, want %v", i+1, got, wantCosts[i])
		}
	}
}

func TestMACSBoundLFK1(t *testing.T) {
	// Paper §3.5: sum of chimes 527; x1.02 refresh = 537.54 cycles;
	// t_MACS = 4.200 CPL = 0.840 CPF.
	res := MACSBound(lfk1Body(t), 128, DefaultRules())
	if math.Abs(res.Cycles-537.54) > 0.01 {
		t.Errorf("MACS cycles = %v, want 537.54", res.Cycles)
	}
	if math.Abs(res.CPL-4.200) > 0.001 {
		t.Errorf("MACS CPL = %v, want 4.200", res.CPL)
	}
	if got := CPF(res.CPL, lfk1MA); math.Abs(got-0.840) > 0.001 {
		t.Errorf("MACS CPF = %v, want 0.840", got)
	}
}

func TestMACSFBoundLFK1(t *testing.T) {
	// Execute-only bound: deleting the memory ops leaves mul / mul+add /
	// mul+add -> 3 chimes, (129+130+130)/128 = 3.04 CPL (paper Table 5).
	res := MACSBound(StripMemOps(lfk1Body(t)), 128, DefaultRules())
	if len(res.Chimes) != 3 {
		t.Fatalf("t_MACS^f chimes = %d, want 3", len(res.Chimes))
	}
	if math.Abs(res.CPL-3.04) > 0.01 {
		t.Errorf("t_MACS^f = %v CPL, want about 3.04", res.CPL)
	}
	if res.RefreshCycles != 0 {
		t.Errorf("execute-only bound charged refresh %v, want 0", res.RefreshCycles)
	}
}

func TestMACSMBoundLFK1(t *testing.T) {
	// Access-only bound: 4 memory chimes, (3*130+132)*1.02/128 = 4.16 CPL
	// (paper Table 5 reports 4.14).
	res := MACSBound(StripFPOps(lfk1Body(t)), 128, DefaultRules())
	if len(res.Chimes) != 4 {
		t.Fatalf("t_MACS^m chimes = %d, want 4", len(res.Chimes))
	}
	if res.CPL < 4.05 || res.CPL > 4.25 {
		t.Errorf("t_MACS^m = %v CPL, want about 4.16", res.CPL)
	}
}

func TestAnalyzeLFK1Hierarchy(t *testing.T) {
	a := Analyze(lfk1MA, lfk1Body(t), 128, DefaultRules())
	tma, tmac, tmacs := a.CPFs()
	if tma != 0.6 || tmac != 0.8 {
		t.Errorf("CPFs = %v, %v, want 0.6, 0.8", tma, tmac)
	}
	if math.Abs(tmacs-0.840) > 0.001 {
		t.Errorf("MACS CPF = %v, want 0.840", tmacs)
	}
	// Hierarchy: MA <= MAC <= MACS.
	if !(a.TMA <= a.TMAC && a.TMAC <= a.MACS.CPL) {
		t.Errorf("hierarchy violated: MA=%v MAC=%v MACS=%v", a.TMA, a.TMAC, a.MACS.CPL)
	}
}

func TestPairRuleSplitsChime(t *testing.T) {
	// Paper §3.3: add.d v2,v6,v6 ; mul.d v6,v1,v4 exceeds two reads of
	// pair {v2,v6} and must split into two chimes.
	p := asm.MustParse(`
	add.d v2,v6,v6
	mul.d v6,v1,v4
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 2 {
		t.Fatalf("pair read violation: %d chimes, want 2", len(chimes))
	}
	// Without the pair rule they would share a chime.
	rules := DefaultRules()
	rules.PairRule = false
	chimes = Partition(p.Instrs, rules)
	if len(chimes) != 1 {
		t.Fatalf("pair rule disabled: %d chimes, want 1", len(chimes))
	}
}

func TestPairWriteRuleSplitsChime(t *testing.T) {
	// Paper §3.3: add.d v1,v0,v2 ; mul.d v2,v1,v6 writes pair {v2,v6}
	// twice and must split.
	p := asm.MustParse(`
	add.d v1,v0,v2
	mul.d v2,v1,v6
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 2 {
		t.Fatalf("pair write violation: %d chimes, want 2", len(chimes))
	}
}

func TestPipeConflictSplitsChime(t *testing.T) {
	p := asm.MustParse(`
	add.d v0,v1,v2
	sub.d v3,v1,v5
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 2 {
		t.Fatalf("two add-pipe ops: %d chimes, want 2", len(chimes))
	}
}

func TestChainingRuleWithoutChaining(t *testing.T) {
	// ld feeding an add shares a chime with chaining, splits without.
	p := asm.MustParse(`
.data x 1024
	ld.l x(a1),v0
	add.d v0,v1,v2
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 1 {
		t.Fatalf("chained ld+add: %d chimes, want 1", len(chimes))
	}
	rules := DefaultRules()
	rules.Chaining = false
	chimes = Partition(p.Instrs, rules)
	if len(chimes) != 2 {
		t.Fatalf("no chaining: %d chimes, want 2", len(chimes))
	}
}

func TestScalarMemorySplitRule(t *testing.T) {
	// A scalar load between a vector load and a vector add: the chime has
	// a vector memory access, so it terminates at the scalar load.
	p := asm.MustParse(`
.data x 1024
	ld.l x(a1),v0
	ld.l x+8(a2),s3
	add.d v0,v1,v2
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 2 {
		t.Fatalf("split rule: %d chimes, want 2", len(chimes))
	}
	// Scalar load first, then vector FP, then vector load: the vector
	// memory reference is the later one, so the chime splits before it.
	q := asm.MustParse(`
.data x 1024
	ld.l x+8(a2),s3
	add.d v0,v1,v2
	ld.l x(a1),v4
`)
	chimes = Partition(q.Instrs, DefaultRules())
	if len(chimes) != 2 {
		t.Fatalf("split-before-later rule: %d chimes, want 2", len(chimes))
	}
	if chimes[0].HasMem {
		t.Error("first chime should be the FP-only chime")
	}
	// Without the rule, all three fit one chime.
	rules := DefaultRules()
	rules.SplitRule = false
	if got := Partition(q.Instrs, rules); len(got) != 1 {
		t.Fatalf("split rule disabled: %d chimes, want 1", len(got))
	}
}

func TestScalarMemoryBetweenFPChimesDoesNotSplit(t *testing.T) {
	// Paper §4.4 (LFK8): a scalar load splits a potential load-add-mul
	// chime but not an add-mul chime.
	p := asm.MustParse(`
.data x 1024
	add.d v0,v1,v2
	ld.l x+8(a2),s3
	mul.d v2,v3,v5
`)
	chimes := Partition(p.Instrs, DefaultRules())
	if len(chimes) != 1 {
		t.Fatalf("FP-only chime split by scalar load: %d chimes, want 1", len(chimes))
	}
}

func TestRefreshRuns(t *testing.T) {
	// Three memory chimes: no refresh factor (needs four).
	p := asm.MustParse(`
.data x 8192
	ld.l x(a1),v0
	ld.l x+8(a1),v1
	st.l v0,x+16(a1)
`)
	res := MACSBound(p.Instrs, 128, DefaultRules())
	if res.RefreshCycles != 0 {
		t.Errorf("3 memory chimes charged refresh %v, want 0", res.RefreshCycles)
	}
	// Four memory chimes: factor applies to all (cyclic repeat).
	q := asm.MustParse(`
.data x 8192
	ld.l x(a1),v0
	ld.l x+8(a1),v1
	ld.l x+24(a1),v2
	st.l v0,x+16(a1)
`)
	res = MACSBound(q.Instrs, 128, DefaultRules())
	want := 0.02 * (130 + 130 + 130 + 132)
	if math.Abs(res.RefreshCycles-want) > 1e-9 {
		t.Errorf("4 memory chimes refresh = %v, want %v", res.RefreshCycles, want)
	}
}

func TestRefreshRunBrokenByFPChime(t *testing.T) {
	// mem mem FP(mul-pipe chimes) mem mem, cyclically: the run wraps to
	// length 4 and the factor applies to the memory chimes only.
	p := asm.MustParse(`
.data x 8192
	ld.l x(a1),v0
	ld.l x+8(a1),v1
	mul.d v0,v1,v2
	mul.d v2,v1,v3
	ld.l x+24(a1),v4
	st.l v3,x+16(a1)
`)
	// Chimes: {ld,mul} {ld,mul} {ld} {st}: all have memory -> run of 4.
	res := MACSBound(p.Instrs, 128, DefaultRules())
	if res.RefreshCycles <= 0 {
		t.Errorf("cyclic run of 4 memory chimes should be charged, got %v", res.RefreshCycles)
	}
}

func TestDivideDominatesChimeCost(t *testing.T) {
	p := asm.MustParse("div.d v0,v1,v2")
	res := MACSBound(p.Instrs, 128, DefaultRules())
	want := 4.0*128 + 21
	if res.Cycles != want {
		t.Errorf("divide chime cycles = %v, want %v", res.Cycles, want)
	}
}

func TestReductionZ(t *testing.T) {
	p := asm.MustParse("sum.d v0,s1")
	res := MACSBound(p.Instrs, 128, DefaultRules())
	want := 1.35 * 128
	if res.Cycles != want {
		t.Errorf("reduction chime cycles = %v, want %v", res.Cycles, want)
	}
}

func TestMACSBoundEmptyAndZeroVL(t *testing.T) {
	if res := MACSBound(nil, 128, DefaultRules()); res.Cycles != 0 || res.CPL != 0 {
		t.Errorf("empty body bound = %+v, want zero", res)
	}
	body := lfk1Body(t)
	if res := MACSBound(body, 0, DefaultRules()); res.Cycles != 0 {
		t.Errorf("VL=0 bound = %+v, want zero", res)
	}
}

func TestBubblesDisabled(t *testing.T) {
	rules := DefaultRules()
	rules.Bubbles = false
	rules.Refresh = false
	res := MACSBound(lfk1Body(t), 128, rules)
	if res.Cycles != 4*128 {
		t.Errorf("no-bubble cycles = %v, want 512", res.Cycles)
	}
}

func TestHarmonicMeanMFLOPS(t *testing.T) {
	// Paper Table 4: average MA CPF 1.080 -> 23.15 MFLOPS.
	got := HarmonicMeanMFLOPS([]float64{1.080})
	if math.Abs(got-23.148) > 0.01 {
		t.Errorf("HMEAN = %v, want 23.15", got)
	}
	if HarmonicMeanMFLOPS(nil) != 0 {
		t.Error("HMEAN of empty set should be 0")
	}
}

func TestStripOpsPreserveScalars(t *testing.T) {
	body := lfk1Body(t)
	f := StripMemOps(body)
	m := StripFPOps(body)
	// 14 instructions: 5 scalar, 4 memory-vector, 5 fp-vector.
	if len(f) != 14-4 {
		t.Errorf("StripMemOps kept %d instrs, want 10", len(f))
	}
	if len(m) != 14-5 {
		t.Errorf("StripFPOps kept %d instrs, want 9", len(m))
	}
	for _, in := range f {
		if in.IsVector() && in.IsMemory() {
			t.Errorf("StripMemOps left %v", in)
		}
	}
	for _, in := range m {
		if in.IsVector() && (in.Class() == isa.ClassFPAdd || in.Class() == isa.ClassFPMul) {
			t.Errorf("StripFPOps left %v", in)
		}
	}
}

// Property: every vector instruction lands in exactly one chime, chimes
// preserve order, and each chime respects the pipe and pair limits.
func TestPartitionInvariants(t *testing.T) {
	bodies := [][]isa.Instr{
		lfk1Body(t),
		asm.MustParse(".data x 8192\n\tld.l x(a1),v0\n\tdiv.d v0,v1,v2\n\tsum.d v2,s1\n\tst.l v2,x+8(a1)").Instrs,
		asm.MustParse("add.d v0,v1,v2\n\tmul.d v2,v3,v5\n\tsub.d v5,v0,v6\n\tneg.d v6,v7").Instrs,
	}
	for bi, body := range bodies {
		chimes := Partition(body, DefaultRules())
		var nvec int
		for _, in := range body {
			if in.IsVector() {
				nvec++
			}
		}
		var got int
		for ci, c := range chimes {
			got += len(c.Members)
			pipes := map[isa.Pipe]bool{}
			var reads, writes [4]int
			for _, in := range c.Members {
				if pipes[in.Pipe()] {
					t.Errorf("body %d chime %d: duplicate pipe %v", bi, ci, in.Pipe())
				}
				pipes[in.Pipe()] = true
				accumulatePairRefs(in, &reads, &writes)
			}
			for p := 0; p < 4; p++ {
				if reads[p] > isa.PairMaxReads || writes[p] > isa.PairMaxWrites {
					t.Errorf("body %d chime %d: pair %d refs r=%d w=%d", bi, ci, p, reads[p], writes[p])
				}
			}
			if len(c.Members) > 3 {
				t.Errorf("body %d chime %d: %d members, max 3 (one per pipe)", bi, ci, len(c.Members))
			}
		}
		if got != nvec {
			t.Errorf("body %d: %d chime members, want %d vector instrs", bi, got, nvec)
		}
	}
}

// Property: the MACS bound is monotonic in the body — appending an
// instruction never lowers the bound.
func TestMACSMonotonicity(t *testing.T) {
	body := lfk1Body(t)
	prev := 0.0
	for i := 1; i <= len(body); i++ {
		res := MACSBound(body[:i], 128, DefaultRules())
		if res.Cycles+1e-9 < prev {
			t.Fatalf("bound decreased at prefix %d: %v < %v", i, res.Cycles, prev)
		}
		prev = res.Cycles
	}
}

// Property: t_MACS >= max over component bounds cannot be asserted in
// general (the paper notes t_MACS is *not* simply max(t_MACS^f, t_MACS^m)),
// but t_MACS must be at least each of MA-, MAC-style pipe bounds.
func TestMACSAtLeastMAC(t *testing.T) {
	body := lfk1Body(t)
	a := Analyze(lfk1MA, body, 128, DefaultRules())
	if a.MACS.CPL < a.TMAC {
		t.Errorf("t_MACS (%v) < t_MAC (%v)", a.MACS.CPL, a.TMAC)
	}
	if a.TMAC < a.TMA {
		t.Errorf("t_MAC (%v) < t_MA (%v)", a.TMAC, a.TMA)
	}
}

func TestNoMemoryChainingRule(t *testing.T) {
	// ld feeding an add: one chime on the C-240, two on a Cray-1-like
	// machine where loads cannot chain into arithmetic.
	p := asm.MustParse(`
.data x 1024
	ld.l x(a1),v0
	add.d v0,v1,v2
`)
	rules := DefaultRules()
	if got := len(Partition(p.Instrs, rules)); got != 1 {
		t.Fatalf("C-240 chimes = %d, want 1", got)
	}
	rules.NoMemoryChaining = true
	if got := len(Partition(p.Instrs, rules)); got != 2 {
		t.Fatalf("Cray-1-like chimes = %d, want 2", got)
	}
	// Arithmetic-to-arithmetic chaining is unaffected.
	q := asm.MustParse("\tmul.d v0,v1,v2\n\tadd.d v2,v3,v5")
	if got := len(Partition(q.Instrs, rules)); got != 1 {
		t.Fatalf("mul->add chime under NoMemoryChaining = %d, want 1", got)
	}
}

func TestLFK1BoundAtVL64(t *testing.T) {
	// Bounds scale with the hardware vector length: bubbles amortize
	// over fewer elements at VL=64.
	body := lfk1Body(t)
	b128 := MACSBound(body, 128, DefaultRules())
	b64 := MACSBound(body, 64, DefaultRules())
	if b64.CPL <= b128.CPL {
		t.Errorf("VL=64 CPL %.3f should exceed VL=128 CPL %.3f", b64.CPL, b128.CPL)
	}
}
