package core

import (
	"macs/internal/isa"
)

// MACSResult is the outcome of the MACS bound calculation for one inner
// loop at one vector length.
type MACSResult struct {
	Chimes []Chime
	// Cycles is the bounded number of clock cycles for one iteration of
	// the vectorized loop (VL elements), including bubbles and the
	// memory-refresh factor.
	Cycles float64
	// CPL is Cycles / VL.
	CPL float64
	// RefreshCycles is the part of Cycles contributed by the 1.02
	// refresh factor.
	RefreshCycles float64
	VL            int
}

// MACSBound computes t_MACS for a compiled inner-loop body (paper §3.4):
// partition into chimes, charge each chime Z_max*VL + sum(B), and multiply
// each group of four or more successive memory chimes by 1.02. The chime
// sequence is treated cyclically, since the loop body repeats and the
// interaction of the last chime with the first must be considered.
func MACSBound(body []isa.Instr, vl int, rules Rules) MACSResult {
	chimes := Partition(body, rules)
	res := MACSResult{Chimes: chimes, VL: vl}
	if len(chimes) == 0 || vl <= 0 {
		return res
	}
	costs := make([]float64, len(chimes))
	var total float64
	for i, c := range chimes {
		costs[i] = c.Cost(vl, rules)
		total += costs[i]
	}
	if rules.Refresh {
		res.RefreshCycles = refreshPenalty(chimes, costs)
	}
	res.Cycles = total + res.RefreshCycles
	res.CPL = res.Cycles / float64(vl)
	return res
}

// refreshPenalty returns the extra cycles charged by the refresh factor:
// (RefreshFactor-1) times the cost of every maximal cyclic run of
// successive memory chimes of length four or more.
func refreshPenalty(chimes []Chime, costs []float64) float64 {
	n := len(chimes)
	allMem := true
	for _, c := range chimes {
		if !c.HasMem {
			allMem = false
			break
		}
	}
	var runCost float64
	if allMem {
		if n < 4 {
			return 0
		}
		for _, c := range costs {
			runCost += c
		}
		return (isa.RefreshFactor - 1) * runCost
	}
	// Walk the cyclic sequence starting just after a non-memory chime so
	// every run is seen exactly once and wrapping runs are intact.
	start := 0
	for i, c := range chimes {
		if !c.HasMem {
			start = i + 1
			break
		}
	}
	var penalty float64
	runLen := 0
	var run float64
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if chimes[i].HasMem {
			runLen++
			run += costs[i]
			continue
		}
		if runLen >= 4 {
			penalty += (isa.RefreshFactor - 1) * run
		}
		runLen, run = 0, 0
	}
	if runLen >= 4 {
		penalty += (isa.RefreshFactor - 1) * run
	}
	return penalty
}

// StripMemOps returns a copy of the body with all vector memory access
// operations deleted: the input to the t_MACS^f (execute-only) bound.
func StripMemOps(body []isa.Instr) []isa.Instr {
	var out []isa.Instr
	for _, in := range body {
		if in.IsVector() && in.IsMemory() {
			continue
		}
		out = append(out, in)
	}
	return out
}

// StripFPOps returns a copy of the body with all vector floating point
// operations deleted: the input to the t_MACS^m (access-only) bound.
func StripFPOps(body []isa.Instr) []isa.Instr {
	var out []isa.Instr
	for _, in := range body {
		if in.IsVector() {
			switch in.Class() {
			case isa.ClassFPAdd, isa.ClassFPMul:
				continue
			}
		}
		out = append(out, in)
	}
	return out
}

// Analysis bundles the complete bounds hierarchy for one kernel.
type Analysis struct {
	// MA is the high-level workload (perfect index analysis); MAC is the
	// workload counted from the compiled assembly.
	MA, MAC Workload
	// TMA and TMAC are the MA and MAC bounds in CPL.
	TMA, TMAC float64
	// MACS is the full schedule-specific bound; MACSF and MACSM are the
	// reduced-list bounds with memory / floating point operations deleted.
	MACS, MACSF, MACSM MACSResult
	VL                 int
	// TCP is the dependence critical-path lower bound in CPL, computed by
	// internal/depgraph and filled in by the facade (core itself never
	// sees the whole program). Zero when no per-element dependence claim
	// could be made (no vector loop, or a non-straight-line body).
	TCP float64
}

// Analyze computes the full MA/MAC/MACS hierarchy for a kernel given its
// high-level (MA) workload and the compiled inner-loop body.
func Analyze(ma Workload, body []isa.Instr, vl int, rules Rules) Analysis {
	a := Analysis{
		MA:  ma,
		MAC: WorkloadFromAssembly(body),
		VL:  vl,
	}
	a.TMA = ma.Bound()
	a.TMAC = a.MAC.Bound()
	a.MACS = MACSBound(body, vl, rules)
	a.MACSF = MACSBound(StripMemOps(body), vl, rules)
	a.MACSM = MACSBound(StripFPOps(body), vl, rules)
	return a
}

// CPFs returns the hierarchy converted to cycles per flop: t_MA, t_MAC and
// t_MACS divided by the high-level flop count.
func (a Analysis) CPFs() (tma, tmac, tmacs float64) {
	return CPF(a.TMA, a.MA), CPF(a.TMAC, a.MA), CPF(a.MACS.CPL, a.MA)
}
