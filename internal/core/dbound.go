package core

import (
	"macs/internal/isa"
)

// This file implements the paper's proposed fifth degree of freedom:
// "The peak memory rate could be reduced for nonunit stride accesses by
// defining a fifth degree of freedom, D, after M, A, C and S to bind the
// allocation (decomposition) of the data structures in memory" (§3.1).
//
// The MACS-D bound reads each vector memory operation's stride from the
// compiled code (the mov #...,vs instructions preceding it) and charges
// the bank-limited per-element rate: with NB interleaved banks of cycle
// time BC, a stride of s words revisits a bank every NB/gcd(s,NB)
// accesses, so the sustainable rate is max(Z, BC*gcd(s,NB)/NB) cycles
// per element.

// StrideAnnotation maps the index of each vector memory instruction in a
// loop body to its access stride in bytes.
type StrideAnnotation map[int]int64

// AnnotateStrides statically recovers per-instruction strides from the
// compiled loop body by tracking immediate writes to the VS register.
// Instructions before any VS set use the unit stride.
func AnnotateStrides(body []isa.Instr) StrideAnnotation {
	ann := make(StrideAnnotation)
	cur := int64(isa.WordBytes)
	for i, in := range body {
		if in.Op == isa.OpMov && len(in.Ops) == 2 &&
			in.Ops[1].Kind == isa.KindReg && in.Ops[1].Reg == isa.VS() &&
			in.Ops[0].Kind == isa.KindImm {
			cur = in.Ops[0].Imm
			continue
		}
		if in.IsVector() && in.IsMemory() {
			ann[i] = cur
		}
	}
	return ann
}

// BankLimitedZ returns the per-element cycle cost of a memory stream with
// the given byte stride on an interleaved memory: max(1, BC*g/NB) where
// g = gcd(|stride| in words, NB).
func BankLimitedZ(strideBytes int64, banks, bankCycle int) float64 {
	words := strideBytes / isa.WordBytes
	if words < 0 {
		words = -words
	}
	if words == 0 {
		// Stride zero hammers a single bank.
		return float64(bankCycle)
	}
	g := gcdI64(words, int64(banks))
	z := float64(bankCycle) * float64(g) / float64(banks)
	if z < 1 {
		return 1
	}
	return z
}

func gcdI64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// MACSDBound computes t_MACSD: the MACS bound with the memory pipe's
// per-element rate bound by the bank decomposition of each stream. For
// conflict-free strides it equals the MACS bound.
func MACSDBound(body []isa.Instr, vl int, rules Rules) MACSResult {
	ann := AnnotateStrides(body)
	chimes := partitionWithStrides(body, rules, ann)
	res := MACSResult{Chimes: chimes, VL: vl}
	if len(chimes) == 0 || vl <= 0 {
		return res
	}
	costs := make([]float64, len(chimes))
	var total float64
	for i, c := range chimes {
		costs[i] = c.Cost(vl, rules)
		total += costs[i]
	}
	if rules.Refresh {
		res.RefreshCycles = refreshPenalty(chimes, costs)
	}
	res.Cycles = total + res.RefreshCycles
	res.CPL = res.Cycles / float64(vl)
	return res
}

// partitionWithStrides partitions like Partition but raises each memory
// member's effective Z to its bank-limited rate, which propagates into
// the chime's ZMax.
func partitionWithStrides(body []isa.Instr, rules Rules, ann StrideAnnotation) []Chime {
	var chimes []Chime
	b := NewChimeBuilder(rules)
	memberIdx := make(map[int]int64) // index within forming chime -> stride
	flush := func() {
		if c, ok := b.Flush(); ok {
			for i := range c.Members {
				if stride, ok := memberIdx[i]; ok {
					z := BankLimitedZ(stride, isa.MemBanks, isa.BankCycle)
					if z > c.ZMax {
						c.ZMax = z
					}
				}
			}
			chimes = append(chimes, c)
		}
		memberIdx = make(map[int]int64)
	}
	for i, in := range body {
		if !in.IsVector() {
			if in.IsMemory() && b.NoteScalarMem() {
				flush()
			}
			continue
		}
		if _, ok := isa.VectorTiming(in.Op); !ok {
			continue
		}
		if !b.Fits(in) {
			flush()
		}
		if in.IsMemory() {
			if s, ok := ann[i]; ok {
				memberIdx[len(b.Current().Members)] = s
			}
		}
		b.Add(in)
	}
	flush()
	return chimes
}

// DecompositionPenalty reports how much the data decomposition costs:
// the ratio t_MACSD / t_MACS (1.0 when every stream is conflict-free).
func DecompositionPenalty(body []isa.Instr, vl int, rules Rules) float64 {
	base := MACSBound(body, vl, rules)
	if base.Cycles == 0 {
		return 1
	}
	return MACSDBound(body, vl, rules).Cycles / base.Cycles
}
