// Package core implements the paper's primary contribution: the MACS
// hierarchy of performance bounds (MA, MAC, MACS) for vectorized inner
// loops on the Convex C-240, including the chime partitioning algorithm
// (§3.3), the MACS bound with tailgating bubbles and the memory-refresh
// factor (§3.4), the reduced-list bounds t_MACS^f and t_MACS^m, and the
// CPL/CPF/MFLOPS conversions (§3.1).
package core

import (
	"fmt"

	"macs/internal/isa"
)

// Workload holds MACS operation counts for one inner-loop iteration:
// floating point additions (FA), multiplications (FM), loads and stores of
// floating point data. The MA workload is derived from the high-level code
// assuming perfect index analysis; the MAC workload is counted from the
// compiler-generated assembly.
type Workload struct {
	FA     int // f_a: additions (incl. subtractions, negations, reductions)
	FM     int // f_m: multiplications (incl. divisions, square roots)
	Loads  int // l: floating point loads
	Stores int // s: floating point stores
}

// Flops returns f_a + f_m, the number of floating point arithmetic
// operations per iteration of the high-level loop body.
func (w Workload) Flops() int { return w.FA + w.FM }

// TF returns the floating point component bound t_f = max(f_a, f_m) in
// cycles per loop iteration: the add and multiply pipes each retire one
// result per clock.
func (w Workload) TF() float64 {
	if w.FA > w.FM {
		return float64(w.FA)
	}
	return float64(w.FM)
}

// TM returns the memory component bound t_m = l + s in cycles per loop
// iteration: the single memory port retires one access per clock.
func (w Workload) TM() float64 { return float64(w.Loads + w.Stores) }

// Bound returns max(t_f, t_m), the MA or MAC bound in CPL depending on
// which workload the receiver holds (paper Eq. 1).
func (w Workload) Bound() float64 {
	tf, tm := w.TF(), w.TM()
	if tf > tm {
		return tf
	}
	return tm
}

func (w Workload) String() string {
	return fmt.Sprintf("fa=%d fm=%d l=%d s=%d", w.FA, w.FM, w.Loads, w.Stores)
}

// WorkloadFromAssembly counts the MAC workload of a compiled inner loop:
// all vector operations of the classes of interest in the instruction
// sequence (paper §3.1). Scalar instructions do not contribute.
func WorkloadFromAssembly(instrs []isa.Instr) Workload {
	var w Workload
	for _, in := range instrs {
		if !in.IsVector() {
			continue
		}
		switch in.Class() {
		case isa.ClassFPAdd:
			w.FA++
		case isa.ClassFPMul:
			w.FM++
		case isa.ClassLoad:
			w.Loads++
		case isa.ClassStore:
			w.Stores++
		}
	}
	return w
}

// CPF converts a CPL figure to cycles per floating point operation by
// dividing by the high-level flop count (paper Eq. 2-3). The divisor is
// always the MA workload's f_a+f_m, even for MAC/MACS bounds.
func CPF(cpl float64, maWorkload Workload) float64 {
	f := maWorkload.Flops()
	if f == 0 {
		return 0
	}
	return cpl / float64(f)
}

// HarmonicMeanMFLOPS returns the harmonic-mean megaflops rate of a set of
// applications from their CPF figures (paper Eq. 4): clock rate divided by
// average CPF.
func HarmonicMeanMFLOPS(cpfs []float64) float64 {
	if len(cpfs) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cpfs {
		sum += c
	}
	return isa.CPFToMFLOPS(sum / float64(len(cpfs)))
}
