package core

import (
	"math"

	"macs/internal/isa"
)

// This file extends the MACS bound with the effects the paper leaves
// unmodeled but names as the causes of its largest gaps (§4.4): strip
// mining at short vector lengths, per-entry pipeline startup, reduction
// drain, and outer-loop scalar overhead ("Outer loop overhead and scalar
// code could be modeled as in [5]"). The result, t_MACS+, tightens the
// explanation of kernels like LFK 2, 4 and 6 whose inner loops are
// entered many times with few elements.

// LoopShape describes how a kernel drives its inner loop.
type LoopShape struct {
	// Elements is the total number of inner-loop iterations executed.
	Elements int
	// Entries is the number of times the inner loop is entered (outer
	// iterations / GOTO passes). 1 for a single flat loop.
	Entries int
	// EntryLengths, when set, gives the exact element count of each
	// entry (e.g. LFK2's halving cascade 50,25,12,6,3); it overrides the
	// uniform Elements/Entries split.
	EntryLengths []int
	// OuterScalarOps estimates the scalar operations executed per entry
	// outside the strip loop (loop control, address setup, epilogues).
	OuterScalarOps int
}

// AverageVL returns the mean elements per entry, clamped to the hardware
// vector length.
func (s LoopShape) AverageVL() int {
	if s.Entries <= 0 || s.Elements <= 0 {
		return isa.VLMax
	}
	vl := (s.Elements + s.Entries - 1) / s.Entries
	if vl > isa.VLMax {
		return isa.VLMax
	}
	if vl < 1 {
		return 1
	}
	return vl
}

// ExtendedResult is the outcome of the extended bound.
type ExtendedResult struct {
	// CPL is the extended bound in cycles per inner-loop iteration.
	CPL float64
	// Breakdown in cycles per entry.
	StreamCycles    float64 // strip chime costs
	StartupCycles   float64 // pipeline fill at entry
	ReductionCycles float64 // accumulator clear + final sum drain
	ScalarCycles    float64 // outer scalar estimate
}

// ExtendedBound computes t_MACS+ for a compiled inner loop driven with
// the given shape:
//
//   - each entry runs ceil(e/VLMax) strips; full strips cost the MACS
//     chime total at VL = VLMax, the last strip at the residual length;
//   - each entry pays the pipeline startup of the first chime
//     (X + Y of its head instruction);
//   - each reduction pays an accumulator clear and a final sum drain at
//     the entry's effective vector length;
//   - each entry pays the scalar overhead estimate at one op per cycle.
func ExtendedBound(body []isa.Instr, shape LoopShape, rules Rules) ExtendedResult {
	var res ExtendedResult
	if shape.Elements <= 0 {
		return res
	}
	entries := shape.Entries
	if entries <= 0 {
		entries = 1
	}
	lengths := shape.EntryLengths
	if len(lengths) == 0 {
		// Uniform split.
		per := float64(shape.Elements) / float64(entries)
		lengths = make([]int, entries)
		for i := range lengths {
			lengths[i] = int(math.Ceil(per))
		}
	}

	chimeTotal := func(vl int) float64 {
		if vl <= 0 {
			return 0
		}
		return MACSBound(body, vl, rules).Cycles
	}

	// Per-entry fixed costs.
	var startup float64
	chimes := Partition(body, rules)
	if len(chimes) > 0 && len(chimes[0].Members) > 0 {
		if t, ok := isa.VectorTiming(chimes[0].Members[0].Op); ok {
			startup = float64(t.X + t.Y)
		}
	}
	reductions := countReductions(body)
	sumT, _ := isa.VectorTiming(isa.OpSum)

	var total float64
	nEntries := 0
	for _, e := range lengths {
		if e <= 0 {
			continue
		}
		nEntries++
		// Strips: full strips at VLMax, the residue at its own length.
		stream := float64(e/isa.VLMax) * chimeTotal(isa.VLMax)
		if rem := e % isa.VLMax; rem > 0 {
			stream += chimeTotal(rem)
		}
		var red float64
		if reductions > 0 {
			vl := e
			if vl > isa.VLMax {
				vl = isa.VLMax
			}
			drain := float64(sumT.X+sumT.Y) + sumT.Z*float64(vl)
			clear := float64(vl) + 12
			red = float64(reductions) * (drain + clear + 16)
		}
		total += stream + startup + red + float64(shape.OuterScalarOps)
		// Accumulate the per-entry averages for the breakdown.
		res.StreamCycles += stream
		res.ReductionCycles += red
	}
	if nEntries == 0 {
		return res
	}
	res.StreamCycles /= float64(nEntries)
	res.ReductionCycles /= float64(nEntries)
	res.StartupCycles = startup
	res.ScalarCycles = float64(shape.OuterScalarOps)
	res.CPL = total / float64(shape.Elements)
	return res
}

// countReductions counts vector sum instructions and accumulator-style
// adds (an add whose source and destination are the same register) in
// the body; either pattern indicates one folded reduction. Strip-mined
// loops keep the sum outside the body, so the accumulate add is the
// reliable marker.
func countReductions(body []isa.Instr) int {
	n := 0
	for _, in := range body {
		if !in.IsVector() {
			continue
		}
		if in.Op == isa.OpSum {
			n++
			continue
		}
		if in.Op == isa.OpAdd {
			if d, ok := in.VectorWrite(); ok {
				for _, r := range in.VectorReads() {
					if r == d {
						n++
						break
					}
				}
			}
		}
	}
	return n
}
