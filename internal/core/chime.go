package core

import (
	"macs/internal/isa"
)

// Rules configures the chime partitioning algorithm. The zero value
// disables everything; use DefaultRules for the C-240 behaviour.
type Rules struct {
	// Chaining allows dependent vector instructions to share a chime
	// (false models a Cray-2-style machine without chaining).
	Chaining bool
	// NoMemoryChaining restricts chaining so a consumer of a vector
	// load's result cannot share its chime (the Cray-1's limitation:
	// loads could not chain into arithmetic at arbitrary issue times).
	NoMemoryChaining bool
	// PairRule enforces at most two reads and one write per vector
	// register pair per chime.
	PairRule bool
	// SplitRule terminates a chime containing a vector memory access at a
	// scalar memory access instruction (single memory port).
	SplitRule bool
	// Bubbles charges each instruction its tailgating bubble B.
	Bubbles bool
	// Refresh applies the 1.02 factor to groups of four or more
	// successive chimes that each include a memory operation.
	Refresh bool
}

// DefaultRules returns the paper's C-240 chime rules, all enabled.
func DefaultRules() Rules {
	return Rules{Chaining: true, PairRule: true, SplitRule: true, Bubbles: true, Refresh: true}
}

// Chime is one group of concurrently executing vector instructions.
type Chime struct {
	Members []isa.Instr
	// HasMem reports whether the chime includes a vector memory access.
	HasMem bool
	// ZMax is the largest per-element rate among members.
	ZMax float64
	// SumB is the total tailgating bubble of the members.
	SumB int
}

// Cost returns the chime's contribution in clock cycles for vector length
// vl (paper Eq. 13): Z_max*VL plus the sum of the member bubbles.
func (c Chime) Cost(vl int, rules Rules) float64 {
	cost := c.ZMax * float64(vl)
	if rules.Bubbles {
		cost += float64(c.SumB)
	}
	return cost
}

// ChimeBuilder incrementally forms chimes under a rule set. It is the
// engine behind Partition and is also used by the cycle-level simulator,
// so the machine and the model share one implementation of the C-240
// issue rules.
type ChimeBuilder struct {
	rules      Rules
	cur        Chime
	pipesUsed  map[isa.Pipe]bool
	pairReads  [4]int
	pairWrites [4]int
	writers    map[isa.Reg]isa.Op // vector registers written by current chime, by opcode
	scalarMem  bool               // scalar memory access seen since chime start
	closed     bool               // chime terminated by the split rule
}

// NewChimeBuilder returns an empty builder for the given rules.
func NewChimeBuilder(rules Rules) *ChimeBuilder {
	b := &ChimeBuilder{rules: rules}
	b.reset()
	return b
}

func (b *ChimeBuilder) reset() {
	b.cur = Chime{}
	// Reuse the maps: reset runs once per flushed chime, and reallocating
	// them is measurable churn in the simulator's hot loop.
	if b.pipesUsed == nil {
		b.pipesUsed = make(map[isa.Pipe]bool)
		b.writers = make(map[isa.Reg]isa.Op)
	} else {
		clear(b.pipesUsed)
		clear(b.writers)
	}
	b.pairReads = [4]int{}
	b.pairWrites = [4]int{}
	b.scalarMem = false
	b.closed = false
}

// Reset discards any forming chime and returns the builder to its initial
// state, reusing its allocations (for pooled simulator reuse).
func (b *ChimeBuilder) Reset() { b.reset() }

// Empty reports whether the forming chime has no members.
func (b *ChimeBuilder) Empty() bool { return len(b.cur.Members) == 0 }

// Current returns the chime formed so far.
func (b *ChimeBuilder) Current() Chime { return b.cur }

// Flush returns the formed chime (ok=false if empty) and resets the
// builder for the next chime.
func (b *ChimeBuilder) Flush() (Chime, bool) {
	c, ok := b.cur, !b.Empty()
	b.reset()
	return c, ok
}

// InChimeWriter reports whether the named vector register is written by a
// member of the forming chime (a chaining opportunity).
func (b *ChimeBuilder) InChimeWriter(r isa.Reg) bool {
	_, ok := b.writers[r]
	return ok
}

// NoteScalarMem records a scalar memory access between vector
// instructions and reports whether it terminates the forming chime
// (which then must be flushed by the caller): a chime including a vector
// memory access cannot span a scalar memory access (paper §3.3).
func (b *ChimeBuilder) NoteScalarMem() (terminates bool) {
	if !b.rules.SplitRule {
		return false
	}
	if b.cur.HasMem {
		b.closed = true
		return true
	}
	b.scalarMem = true
	return false
}

// Fits reports whether a vector instruction can join the forming chime.
func (b *ChimeBuilder) Fits(in isa.Instr) bool {
	if b.Empty() {
		return true
	}
	if b.closed {
		return false
	}
	if b.pipesUsed[in.Pipe()] {
		return false
	}
	if b.rules.SplitRule && b.scalarMem && in.IsMemory() {
		// The chime is terminated just before the later of the scalar and
		// vector memory references (paper §3.3).
		return false
	}
	for _, r := range in.VectorReads() {
		w, written := b.writers[r]
		if !written {
			continue
		}
		if !b.rules.Chaining {
			// Without chaining a dependent instruction cannot share a chime.
			return false
		}
		if b.rules.NoMemoryChaining && w == isa.OpLd {
			// Cray-1-like: a load's consumer waits for the next chime.
			return false
		}
	}
	if b.rules.PairRule {
		var reads, writes [4]int
		copy(reads[:], b.pairReads[:])
		copy(writes[:], b.pairWrites[:])
		accumulatePairRefs(in, &reads, &writes)
		for p := 0; p < 4; p++ {
			if reads[p] > isa.PairMaxReads || writes[p] > isa.PairMaxWrites {
				return false
			}
		}
	}
	return true
}

// Add places a vector instruction into the forming chime. The caller must
// have checked Fits (or flushed).
func (b *ChimeBuilder) Add(in isa.Instr) {
	b.cur.Members = append(b.cur.Members, in)
	b.pipesUsed[in.Pipe()] = true
	if in.IsMemory() {
		b.cur.HasMem = true
	}
	// Partition only feeds ops with Table 1 timings; an op without one
	// contributes zero Z and B rather than derailing the build.
	t, _ := isa.VectorTiming(in.Op)
	if t.Z > b.cur.ZMax {
		b.cur.ZMax = t.Z
	}
	b.cur.SumB += t.B
	accumulatePairRefs(in, &b.pairReads, &b.pairWrites)
	if w, ok := in.VectorWrite(); ok {
		b.writers[w] = in.Op
	}
}

func accumulatePairRefs(in isa.Instr, reads, writes *[4]int) {
	for _, r := range in.VectorReads() {
		reads[r.Pair()]++
	}
	if w, ok := in.VectorWrite(); ok {
		writes[w.Pair()]++
	}
}

// Partition groups the vector instructions of an inner-loop body into
// chimes according to the C-240 issue rules (paper §3.3):
//
//   - at most one vector operation per function pipe per chime;
//   - at most two reads and one write per vector register pair per chime;
//   - a chime including a vector memory access cannot span a scalar
//     memory access instruction;
//   - without chaining, dependent instructions cannot share a chime.
//
// Scalar instructions in the body influence partitioning (the split rule)
// but do not become chime members.
func Partition(body []isa.Instr, rules Rules) []Chime {
	var chimes []Chime
	b := NewChimeBuilder(rules)
	for _, in := range body {
		if !in.IsVector() {
			if in.IsMemory() {
				b.NoteScalarMem()
			}
			continue
		}
		if _, ok := isa.VectorTiming(in.Op); !ok {
			continue
		}
		if !b.Fits(in) {
			if c, ok := b.Flush(); ok {
				chimes = append(chimes, c)
			}
		}
		b.Add(in)
	}
	if c, ok := b.Flush(); ok {
		chimes = append(chimes, c)
	}
	return chimes
}
