package core

import (
	"math"
	"testing"

	"macs/internal/asm"
	"macs/internal/isa"
)

func TestAnnotateStrides(t *testing.T) {
	p := asm.MustParse(`
.data a 8192
	mov #8,vs
	ld.l a(a0),v0
	mov #40,vs
	ld.l a+8(a0),v1
	add.d v0,v1,v2
	st.l v2,a+16(a0)
`)
	ann := AnnotateStrides(p.Instrs)
	if len(ann) != 3 {
		t.Fatalf("annotated %d memory ops, want 3", len(ann))
	}
	if ann[1] != 8 {
		t.Errorf("first load stride = %d, want 8", ann[1])
	}
	if ann[3] != 40 {
		t.Errorf("second load stride = %d, want 40", ann[3])
	}
	if ann[5] != 40 {
		t.Errorf("store stride = %d, want 40 (inherits current VS)", ann[5])
	}
}

func TestBankLimitedZ(t *testing.T) {
	tests := []struct {
		strideBytes int64
		want        float64
	}{
		{8, 1},    // unit
		{16, 1},   // 2 words: revisit every 16 > 8
		{32, 1},   // 4 words: revisit every 8 = 8
		{40, 1},   // 5 words, odd
		{64, 2},   // 8 words: revisit every 4 -> 2 cycles/elem
		{128, 4},  // 16 words: revisit every 2
		{256, 8},  // 32 words: same bank
		{-8, 1},   // negative unit stride
		{-256, 8}, // negative same-bank
		{0, 8},    // stride zero hammers one bank
	}
	for _, tt := range tests {
		if got := BankLimitedZ(tt.strideBytes, isa.MemBanks, isa.BankCycle); got != tt.want {
			t.Errorf("BankLimitedZ(%d) = %v, want %v", tt.strideBytes, got, tt.want)
		}
	}
}

func TestMACSDEqualsMACSForUnitStride(t *testing.T) {
	p := asm.MustParse(`
.data a 8192
	mov #8,vs
	ld.l a(a0),v0
	mul.d v0,v1,v2
	st.l v2,a+16(a0)
`)
	base := MACSBound(p.Instrs, 128, DefaultRules())
	d := MACSDBound(p.Instrs, 128, DefaultRules())
	if d.Cycles != base.Cycles {
		t.Errorf("conflict-free MACSD %v != MACS %v", d.Cycles, base.Cycles)
	}
	if pen := DecompositionPenalty(p.Instrs, 128, DefaultRules()); pen != 1 {
		t.Errorf("penalty = %v, want 1", pen)
	}
}

func TestMACSDPenalizesSameBankStride(t *testing.T) {
	p := asm.MustParse(`
.data a 262144
	mov #256,vs
	ld.l a(a0),v0
	mul.d v0,v1,v2
`)
	base := MACSBound(p.Instrs, 128, DefaultRules())
	d := MACSDBound(p.Instrs, 128, DefaultRules())
	// Stride 32 words: 8 cycles per element on the memory chime.
	if d.Cycles < 8*128 {
		t.Errorf("MACSD = %v cycles, want >= 1024 (bank-limited)", d.Cycles)
	}
	if d.Cycles <= base.Cycles {
		t.Errorf("MACSD (%v) should exceed MACS (%v) for a same-bank stride", d.Cycles, base.Cycles)
	}
	pen := DecompositionPenalty(p.Instrs, 128, DefaultRules())
	if pen < 7 || pen > 9 {
		t.Errorf("penalty = %v, want about 8", pen)
	}
}

func TestMACSDChimeStructureUnchanged(t *testing.T) {
	// The D bound changes rates, never the partition.
	p := asm.MustParse(`
.data a 262144
	mov #64,vs
	ld.l a(a0),v0
	add.d v0,v1,v2
	mul.d v2,v3,v5
	st.l v5,a+8(a0)
`)
	base := Partition(p.Instrs, DefaultRules())
	d := MACSDBound(p.Instrs, 128, DefaultRules())
	if len(d.Chimes) != len(base) {
		t.Errorf("MACSD chimes = %d, MACS = %d", len(d.Chimes), len(base))
	}
}

func TestLoopShapeAverageVL(t *testing.T) {
	tests := []struct {
		shape LoopShape
		want  int
	}{
		{LoopShape{Elements: 1001, Entries: 1}, 128}, // clamped
		{LoopShape{Elements: 2016, Entries: 63}, 32},
		{LoopShape{Elements: 97, Entries: 6}, 17},
		{LoopShape{Elements: 0, Entries: 1}, 128},
		{LoopShape{Elements: 10, Entries: 0}, 128},
		{LoopShape{Elements: 3, Entries: 10}, 1},
	}
	for _, tt := range tests {
		if got := tt.shape.AverageVL(); got != tt.want {
			t.Errorf("AverageVL(%+v) = %d, want %d", tt.shape, got, tt.want)
		}
	}
}

// lfk1Shape drives the extended bound for a flat 1001-element loop.
func TestExtendedBoundFlatLoop(t *testing.T) {
	body := lfk1Body(t)
	shape := LoopShape{Elements: 1001, Entries: 1, OuterScalarOps: 10}
	ext := ExtendedBound(body, shape, DefaultRules())
	base := MACSBound(body, 128, DefaultRules())
	// A flat long loop: the extended bound is close to the plain bound
	// (startup and scalars amortize over 1001 elements).
	if ext.CPL < base.CPL {
		t.Errorf("extended %.3f below MACS %.3f", ext.CPL, base.CPL)
	}
	if ext.CPL > base.CPL*1.05 {
		t.Errorf("extended %.3f too far above MACS %.3f for a long flat loop", ext.CPL, base.CPL)
	}
}

func TestExtendedBoundShortVectors(t *testing.T) {
	// A reduction loop entered 63 times with 32 elements each (the LFK6
	// shape): the extended bound must rise well above the plain bound.
	p := asm.MustParse(`
.data a 8192
.data b 8192
	mov #8,vs
	ld.l a(a0),v0
	ld.l b(a0),v1
	mul.d v0,v1,v2
	add.d v2,v7,v7
`)
	base := MACSBound(p.Instrs, 128, DefaultRules())
	shape := LoopShape{Elements: 2016, Entries: 63, OuterScalarOps: 30}
	ext := ExtendedBound(p.Instrs, shape, DefaultRules())
	if ext.CPL < base.CPL*1.5 {
		t.Errorf("extended %.3f should be well above MACS %.3f for short vectors", ext.CPL, base.CPL)
	}
	if ext.ReductionCycles == 0 {
		t.Error("accumulate add not recognized as a reduction")
	}
	if ext.StartupCycles == 0 || ext.ScalarCycles != 30 {
		t.Errorf("breakdown = %+v", ext)
	}
}

func TestExtendedBoundZeroElements(t *testing.T) {
	ext := ExtendedBound(lfk1Body(t), LoopShape{}, DefaultRules())
	if ext.CPL != 0 {
		t.Errorf("empty shape bound = %v", ext.CPL)
	}
}

func TestCountReductions(t *testing.T) {
	p := asm.MustParse(`
	sum.d v0,s1
	add.d v2,v7,v7
	add.d v0,v1,v2
`)
	if got := countReductions(p.Instrs); got != 2 {
		t.Errorf("countReductions = %d, want 2 (sum + accumulate)", got)
	}
}

// Property: the extended bound is monotone in entries — more entries for
// the same total work never make the bound smaller.
func TestExtendedBoundMonotoneInEntries(t *testing.T) {
	body := lfk1Body(t)
	prev := 0.0
	for _, entries := range []int{1, 2, 4, 8, 16, 32} {
		ext := ExtendedBound(body, LoopShape{Elements: 1024, Entries: entries, OuterScalarOps: 20}, DefaultRules())
		if ext.CPL+1e-9 < prev {
			t.Fatalf("bound decreased at %d entries: %.3f < %.3f", entries, ext.CPL, prev)
		}
		prev = ext.CPL
	}
}

func TestExtendedBoundExceedsFractionalStrips(t *testing.T) {
	// 200 elements in one entry: one full strip plus a 72-element strip;
	// per-iteration bound must exceed the pure VL=128 figure because the
	// residual strip pays full bubbles over fewer elements.
	body := lfk1Body(t)
	ext := ExtendedBound(body, LoopShape{Elements: 200, Entries: 1}, DefaultRules())
	base := MACSBound(body, 128, DefaultRules())
	if ext.CPL < base.CPL {
		t.Errorf("extended %.3f below plain %.3f", ext.CPL, base.CPL)
	}
	if math.IsNaN(ext.CPL) || math.IsInf(ext.CPL, 0) {
		t.Error("extended bound not finite")
	}
}
