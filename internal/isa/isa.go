// Package isa defines the Convex C-240-style instruction set used throughout
// this repository: register files, operands, instructions, and the static
// classification (pipe assignment, operation class) that the MACS bounds
// model and the cycle-level simulator both consume.
//
// The instruction syntax follows the assembly listings in the paper, e.g.
//
//	ld.l  space1+40120(a5),v0
//	mul.d v0,s1,v1
//	add.w #1024,a5
//	jbrs.t L7
//
// An instruction is a *vector* instruction iff it touches at least one of
// the eight vector registers v0..v7 (paper §3.5).
package isa

import "fmt"

// RegClass identifies a register file.
type RegClass int

// Register file classes of the C-240 CPU.
const (
	ClassNone RegClass = iota
	ClassA             // address registers a0..a7 (ASU)
	ClassS             // scalar registers s0..s7 (ASU)
	ClassV             // vector registers v0..v7 (VP), 128 x 64-bit elements
	ClassVL            // vector length register
	ClassVS            // vector stride register (bytes)
)

func (c RegClass) String() string {
	switch c {
	case ClassA:
		return "a"
	case ClassS:
		return "s"
	case ClassV:
		return "v"
	case ClassVL:
		return "vl"
	case ClassVS:
		return "vs"
	default:
		return "?"
	}
}

// NumVRegs is the number of vector registers; VLMax is the hardware vector
// length (elements per vector register).
const (
	NumVRegs = 8
	NumARegs = 8
	NumSRegs = 8
	VLMax    = 128
)

// Reg names one register.
type Reg struct {
	Class RegClass
	N     int
}

// Convenience constructors for registers.
func A(n int) Reg          { return Reg{ClassA, n} }
func S(n int) Reg          { return Reg{ClassS, n} }
func V(n int) Reg          { return Reg{ClassV, n} }
func VL() Reg              { return Reg{Class: ClassVL} }
func VS() Reg              { return Reg{Class: ClassVS} }
func NoReg() Reg           { return Reg{} }
func (r Reg) IsZero() bool { return r.Class == ClassNone }

func (r Reg) String() string {
	switch r.Class {
	case ClassVL, ClassVS:
		return r.Class.String()
	case ClassNone:
		return "-"
	default:
		return fmt.Sprintf("%s%d", r.Class, r.N)
	}
}

// Pair returns the vector register pair index for a vector register.
// The C-240 pairs are {v0,v4} {v1,v5} {v2,v6} {v3,v7}: per chime at most
// two reads and one write may reference each pair (paper §3.3).
func (r Reg) Pair() int {
	if r.Class != ClassV {
		return -1
	}
	return r.N % 4
}

// OperandKind discriminates Operand contents.
type OperandKind int

// Operand kinds.
const (
	KindNone  OperandKind = iota
	KindReg               // register operand
	KindImm               // #immediate
	KindMem               // sym+disp(base) memory operand
	KindLabel             // branch target
)

// Operand is one assembly operand.
type Operand struct {
	Kind  OperandKind
	Reg   Reg
	Imm   int64
	Base  Reg    // KindMem: base address register
	Disp  int64  // KindMem: byte displacement
	Sym   string // KindMem: optional symbol (resolved by the loader)
	Label string // KindLabel
}

// RegOp, ImmOp, MemOp and LabelOp build operands.
func RegOp(r Reg) Operand      { return Operand{Kind: KindReg, Reg: r} }
func ImmOp(v int64) Operand    { return Operand{Kind: KindImm, Imm: v} }
func LabelOp(l string) Operand { return Operand{Kind: KindLabel, Label: l} }
func MemOp(sym string, disp int64, base Reg) Operand {
	return Operand{Kind: KindMem, Base: base, Disp: disp, Sym: sym}
}

func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		return fmt.Sprintf("#%d", o.Imm)
	case KindMem:
		s := ""
		switch {
		case o.Sym != "" && o.Disp > 0:
			s = fmt.Sprintf("%s+%d", o.Sym, o.Disp)
		case o.Sym != "" && o.Disp < 0:
			s = fmt.Sprintf("%s-%d", o.Sym, -o.Disp)
		case o.Sym != "":
			s = o.Sym
		default:
			s = fmt.Sprintf("%d", o.Disp)
		}
		if o.Base.Class == ClassNone {
			return s
		}
		return fmt.Sprintf("%s(%s)", s, o.Base)
	case KindLabel:
		return o.Label
	default:
		return ""
	}
}

// Instr is one machine instruction. Ops appear in assembly order; the
// destination position depends on the opcode (loads and ALU ops write the
// last operand, stores read the first and write memory).
type Instr struct {
	Op      Op
	Suffix  Suffix
	Ops     []Operand
	Label   string // label defined at this instruction, if any
	Comment string
}

// String renders the instruction in the paper's assembly syntax.
func (in Instr) String() string {
	s := in.Op.String()
	if in.Suffix != SufNone {
		s += "." + in.Suffix.String()
	}
	for i, o := range in.Ops {
		if i == 0 {
			s += " " + o.String()
		} else {
			s += "," + o.String()
		}
	}
	if in.Comment != "" {
		s += " ; " + in.Comment
	}
	return s
}

// IsVector reports whether the instruction touches any vector register
// (the paper's definition of a vector instruction).
func (in Instr) IsVector() bool {
	for _, o := range in.Ops {
		if o.Kind == KindReg && o.Reg.Class == ClassV {
			return true
		}
	}
	return false
}

// IsMemory reports whether the instruction accesses memory (scalar or
// vector load/store).
func (in Instr) IsMemory() bool { return in.Op == OpLd || in.Op == OpSt }

// IsLoad and IsStore refine IsMemory.
func (in Instr) IsLoad() bool  { return in.Op == OpLd }
func (in Instr) IsStore() bool { return in.Op == OpSt }

// IsBranch reports whether the instruction may transfer control.
func (in Instr) IsBranch() bool { return in.Op == OpJbrs || in.Op == OpJmp }

// Pipe returns the VP function pipe the instruction executes on, or
// PipeNone for scalar instructions.
func (in Instr) Pipe() Pipe {
	if !in.IsVector() {
		return PipeNone
	}
	return in.Op.Pipe()
}

// Class returns the MACS operation class (FP add, FP multiply, load, store
// or other) of the instruction when treated as a vector instruction.
func (in Instr) Class() OpClass {
	if !in.IsVector() {
		return ClassOther
	}
	return in.Op.Class()
}

// Dst returns the register written by the instruction, if any. Stores and
// branches write no register; compare instructions write the test flag,
// which is not modeled as a Reg.
func (in Instr) Dst() (Reg, bool) {
	switch in.Op {
	case OpSt, OpJbrs, OpJmp, OpLe, OpLt, OpGt, OpGe, OpEq, OpNe, OpNop, OpHalt:
		return Reg{}, false
	}
	if len(in.Ops) == 0 {
		return Reg{}, false
	}
	last := in.Ops[len(in.Ops)-1]
	if last.Kind != KindReg {
		return Reg{}, false
	}
	return last.Reg, true
}

// Sources returns the registers read by the instruction, including memory
// base registers and, for vector memory operations, the implicit VL and VS
// registers. Order is assembly order.
func (in Instr) Sources() []Reg {
	var srcs []Reg
	n := len(in.Ops)
	for i, o := range in.Ops {
		switch o.Kind {
		case KindReg:
			// The last operand is the destination except for stores,
			// compares and branches, which read all register operands.
			isDst := i == n-1
			switch in.Op {
			case OpSt, OpLe, OpLt, OpGt, OpGe, OpEq, OpNe, OpJbrs, OpJmp:
				isDst = false
			}
			if !isDst {
				srcs = append(srcs, o.Reg)
			}
		case KindMem:
			if !o.Base.IsZero() {
				srcs = append(srcs, o.Base)
			}
		}
	}
	if in.IsVector() && in.IsMemory() {
		srcs = append(srcs, VL(), VS())
	} else if in.IsVector() {
		srcs = append(srcs, VL())
	}
	return srcs
}

// VectorReads returns the vector registers read, and VectorWrite the vector
// register written (ok=false if none). These drive chaining and the
// register-pair chime rule.
func (in Instr) VectorReads() []Reg {
	var rs []Reg
	for _, r := range in.Sources() {
		if r.Class == ClassV {
			rs = append(rs, r)
		}
	}
	return rs
}

// VectorWrite returns the vector register written by the instruction.
func (in Instr) VectorWrite() (Reg, bool) {
	d, ok := in.Dst()
	if !ok || d.Class != ClassV {
		return Reg{}, false
	}
	return d, true
}
