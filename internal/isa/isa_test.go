package isa

import (
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	tests := []struct {
		r    Reg
		want string
	}{
		{A(5), "a5"},
		{S(0), "s0"},
		{V(7), "v7"},
		{VL(), "vl"},
		{VS(), "vs"},
		{NoReg(), "-"},
	}
	for _, tt := range tests {
		if got := tt.r.String(); got != tt.want {
			t.Errorf("Reg%v.String() = %q, want %q", tt.r, got, tt.want)
		}
	}
}

func TestRegPair(t *testing.T) {
	// {v0,v4} {v1,v5} {v2,v6} {v3,v7} are the register pairs.
	for n := 0; n < NumVRegs; n++ {
		want := n % 4
		if got := V(n).Pair(); got != want {
			t.Errorf("V(%d).Pair() = %d, want %d", n, got, want)
		}
	}
	if got := S(3).Pair(); got != -1 {
		t.Errorf("S(3).Pair() = %d, want -1", got)
	}
	if got := A(0).Pair(); got != -1 {
		t.Errorf("A(0).Pair() = %d, want -1", got)
	}
}

func TestPairMembership(t *testing.T) {
	if V(0).Pair() != V(4).Pair() {
		t.Error("v0 and v4 should share a pair")
	}
	if V(2).Pair() != V(6).Pair() {
		t.Error("v2 and v6 should share a pair")
	}
	if V(0).Pair() == V(1).Pair() {
		t.Error("v0 and v1 should not share a pair")
	}
}

func TestOperandString(t *testing.T) {
	tests := []struct {
		o    Operand
		want string
	}{
		{RegOp(V(2)), "v2"},
		{ImmOp(1024), "#1024"},
		{MemOp("space1", 40120, A(5)), "space1+40120(a5)"},
		{MemOp("", 16, A(2)), "16(a2)"},
		{MemOp("x", 0, A(1)), "x(a1)"},
		{LabelOp("L7"), "L7"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Operand.String() = %q, want %q", got, tt.want)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{
		Op:     OpLd,
		Suffix: SufL,
		Ops:    []Operand{MemOp("space1", 40120, A(5)), RegOp(V(0))},
	}
	want := "ld.l space1+40120(a5),v0"
	if got := in.String(); got != want {
		t.Errorf("Instr.String() = %q, want %q", got, want)
	}
	in2 := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(V(0)), RegOp(S(1)), RegOp(V(1))}}
	if got, want := in2.String(), "mul.d v0,s1,v1"; got != want {
		t.Errorf("Instr.String() = %q, want %q", got, want)
	}
}

func TestIsVector(t *testing.T) {
	vload := Instr{Op: OpLd, Suffix: SufL, Ops: []Operand{MemOp("", 0, A(5)), RegOp(V(0))}}
	sload := Instr{Op: OpLd, Suffix: SufL, Ops: []Operand{MemOp("", 0, A(5)), RegOp(S(0))}}
	vmulScalarOperand := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(V(0)), RegOp(S(1)), RegOp(V(1))}}
	smul := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(S(0)), RegOp(S(1)), RegOp(S(2))}}

	if !vload.IsVector() {
		t.Error("vector load not classified as vector")
	}
	if sload.IsVector() {
		t.Error("scalar load classified as vector")
	}
	if !vmulScalarOperand.IsVector() {
		t.Error("vector multiply with scalar operand not classified as vector")
	}
	if smul.IsVector() {
		t.Error("scalar multiply classified as vector")
	}
}

func TestPipeAssignment(t *testing.T) {
	tests := []struct {
		op   Op
		want Pipe
	}{
		{OpLd, PipeLoadStore},
		{OpSt, PipeLoadStore},
		{OpAdd, PipeAdd},
		{OpSub, PipeAdd},
		{OpNeg, PipeAdd},
		{OpSum, PipeAdd},
		{OpCvt, PipeAdd},
		{OpShf, PipeAdd},
		{OpAnd, PipeAdd},
		{OpMul, PipeMul},
		{OpDiv, PipeMul},
		{OpSqrt, PipeMul},
		{OpJmp, PipeNone},
		{OpMov, PipeAdd}, // vector moves use the add pipe; scalar moves never ask
	}
	for _, tt := range tests {
		if got := tt.op.Pipe(); got != tt.want {
			t.Errorf("%v.Pipe() = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestScalarInstrHasNoPipe(t *testing.T) {
	smul := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(S(0)), RegOp(S(1)), RegOp(S(2))}}
	if got := smul.Pipe(); got != PipeNone {
		t.Errorf("scalar mul Pipe() = %v, want PipeNone", got)
	}
	vmul := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(V(0)), RegOp(V(1)), RegOp(V(2))}}
	if got := vmul.Pipe(); got != PipeMul {
		t.Errorf("vector mul Pipe() = %v, want PipeMul", got)
	}
}

func TestOpClass(t *testing.T) {
	tests := []struct {
		op   Op
		want OpClass
	}{
		{OpAdd, ClassFPAdd},
		{OpSub, ClassFPAdd},
		{OpNeg, ClassFPAdd},
		{OpSum, ClassFPAdd},
		{OpMul, ClassFPMul},
		{OpDiv, ClassFPMul},
		{OpSqrt, ClassFPMul},
		{OpLd, ClassLoad},
		{OpSt, ClassStore},
		{OpMov, ClassOther},
		{OpJbrs, ClassOther},
	}
	for _, tt := range tests {
		if got := tt.op.Class(); got != tt.want {
			t.Errorf("%v.Class() = %v, want %v", tt.op, got, tt.want)
		}
	}
}

func TestDstAndSources(t *testing.T) {
	// mul.d v0,s1,v1: reads v0, s1, vl; writes v1.
	in := Instr{Op: OpMul, Suffix: SufD, Ops: []Operand{RegOp(V(0)), RegOp(S(1)), RegOp(V(1))}}
	d, ok := in.Dst()
	if !ok || d != V(1) {
		t.Fatalf("Dst() = %v,%v, want v1,true", d, ok)
	}
	srcs := in.Sources()
	wantSrcs := map[Reg]bool{V(0): true, S(1): true, VL(): true}
	if len(srcs) != len(wantSrcs) {
		t.Fatalf("Sources() = %v, want %v", srcs, wantSrcs)
	}
	for _, s := range srcs {
		if !wantSrcs[s] {
			t.Errorf("unexpected source %v", s)
		}
	}
}

func TestStoreReadsValueRegister(t *testing.T) {
	// st.l v0,x(a5): reads v0, a5, vl, vs; writes nothing.
	in := Instr{Op: OpSt, Suffix: SufL, Ops: []Operand{RegOp(V(0)), MemOp("x", 0, A(5))}}
	if _, ok := in.Dst(); ok {
		t.Error("store should have no register destination")
	}
	found := false
	for _, s := range in.Sources() {
		if s == V(0) {
			found = true
		}
	}
	if !found {
		t.Errorf("store Sources() = %v, missing v0", in.Sources())
	}
}

func TestVectorLoadReadsVLVS(t *testing.T) {
	in := Instr{Op: OpLd, Suffix: SufL, Ops: []Operand{MemOp("", 0, A(5)), RegOp(V(0))}}
	var hasVL, hasVS, hasA5 bool
	for _, s := range in.Sources() {
		switch s {
		case VL():
			hasVL = true
		case VS():
			hasVS = true
		case A(5):
			hasA5 = true
		}
	}
	if !hasVL || !hasVS || !hasA5 {
		t.Errorf("vector load Sources() = %v, want vl, vs and a5 present", in.Sources())
	}
}

func TestVectorWrite(t *testing.T) {
	in := Instr{Op: OpAdd, Suffix: SufD, Ops: []Operand{RegOp(V(1)), RegOp(V(0)), RegOp(V(3))}}
	w, ok := in.VectorWrite()
	if !ok || w != V(3) {
		t.Fatalf("VectorWrite() = %v,%v, want v3,true", w, ok)
	}
	reads := in.VectorReads()
	if len(reads) != 2 {
		t.Fatalf("VectorReads() = %v, want two registers", reads)
	}
	// sum.d v0,s1 writes a scalar: no vector write.
	red := Instr{Op: OpSum, Suffix: SufD, Ops: []Operand{RegOp(V(0)), RegOp(S(1))}}
	if _, ok := red.VectorWrite(); ok {
		t.Error("reduction writing a scalar should have no vector write")
	}
	if !red.IsVector() {
		t.Error("reduction reads v0 and must be a vector instruction")
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := OpNop; op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v,%v, want %v,true", op.String(), got, ok, op)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) should fail")
	}
}

func TestSuffixByNameRoundTrip(t *testing.T) {
	for _, s := range []Suffix{SufL, SufW, SufD, SufS, SufT, SufF} {
		got, ok := SuffixByName(s.String())
		if !ok || got != s {
			t.Errorf("SuffixByName(%q) = %v,%v, want %v,true", s.String(), got, ok, s)
		}
	}
}

func TestTable1Timings(t *testing.T) {
	tests := []struct {
		op   Op
		want Timing
	}{
		{OpLd, Timing{2, 10, 1.00, 2}},
		{OpSt, Timing{2, 10, 1.00, 4}},
		{OpAdd, Timing{2, 10, 1.00, 1}},
		{OpMul, Timing{2, 12, 1.00, 1}},
		{OpSub, Timing{2, 10, 1.00, 1}},
		{OpDiv, Timing{2, 72, 4.00, 21}},
		{OpSum, Timing{2, 10, 1.35, 0}},
		{OpNeg, Timing{2, 10, 1.00, 1}},
	}
	for _, tt := range tests {
		got, ok := VectorTiming(tt.op)
		if !ok {
			t.Fatalf("VectorTiming(%v) missing", tt.op)
		}
		if got != tt.want {
			t.Errorf("VectorTiming(%v) = %+v, want %+v", tt.op, got, tt.want)
		}
	}
}

func TestVectorTimingMissingForControlOps(t *testing.T) {
	for _, op := range []Op{OpJmp, OpJbrs, OpLe, OpHalt, OpNop} {
		if _, ok := VectorTiming(op); ok {
			t.Errorf("VectorTiming(%v) should not exist", op)
		}
	}
}

func TestOpTimingPartition(t *testing.T) {
	// Every opcode either has a Table 1 vector timing or is declared
	// scalar-only — never both, never neither. macsvet enforces the same
	// invariant statically; this is the runtime cross-check.
	for op := Op(0); op < numOps; op++ {
		_, hasTiming := VectorTiming(op)
		if hasTiming == ScalarOnly(op) {
			t.Errorf("%v: want exactly one of Table 1 timing or scalarOnly (timing=%v, scalarOnly=%v)",
				op, hasTiming, ScalarOnly(op))
		}
	}
}

func TestCPFToMFLOPS(t *testing.T) {
	// Paper Table 4: average MA CPF 1.080 -> 23.15 MFLOPS at 25 MHz.
	got := CPFToMFLOPS(1.080)
	if got < 23.1 || got > 23.2 {
		t.Errorf("CPFToMFLOPS(1.080) = %v, want about 23.15", got)
	}
	if CPFToMFLOPS(0) != 0 {
		t.Error("CPFToMFLOPS(0) should be 0")
	}
}

func TestPairPropertyQuick(t *testing.T) {
	// Property: pairing is symmetric and partitions v0..v7 into 4 pairs of 2.
	f := func(n uint8) bool {
		a := int(n % NumVRegs)
		b := (a + 4) % NumVRegs
		return V(a).Pair() == V(b).Pair() && V(a).Pair() >= 0 && V(a).Pair() < 4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInstrStringWithComment(t *testing.T) {
	in := Instr{Op: OpSub, Suffix: SufW, Ops: []Operand{ImmOp(128), RegOp(S(0))}, Comment: "#146"}
	if got, want := in.String(), "sub.w #128,s0 ; #146"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestBranchClassification(t *testing.T) {
	jbrs := Instr{Op: OpJbrs, Suffix: SufT, Ops: []Operand{LabelOp("L7")}}
	jmp := Instr{Op: OpJmp, Ops: []Operand{LabelOp("L1")}}
	add := Instr{Op: OpAdd, Suffix: SufW, Ops: []Operand{ImmOp(1), RegOp(A(1))}}
	if !jbrs.IsBranch() || !jmp.IsBranch() {
		t.Error("jbrs/jmp should be branches")
	}
	if add.IsBranch() {
		t.Error("add should not be a branch")
	}
}
