package isa

// Timing holds the X/Y/Z/B parameters of one vector instruction type
// (paper Table 1, VL = 128):
//
//	X  clock cycles of initial overhead,
//	Y  additional cycles until the first element result is available,
//	Z  additional cycles per vector element,
//	B  empirically observed tailgating bubble between successive
//	   instructions in a pipe (handshaking restart penalty).
type Timing struct {
	X int
	Y int
	Z float64
	B int
}

// Table 1 of the paper. Vector reduction uses the conservative Z = 1.35
// with B = 0 (footnote b); vector divide has the long Y and Z = 4
// (footnote a: masked by other instructions absent a resource conflict).
var timings = map[Op]Timing{
	OpLd:   {X: 2, Y: 10, Z: 1.00, B: 2},
	OpSt:   {X: 2, Y: 10, Z: 1.00, B: 4},
	OpAdd:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpSub:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpMul:  {X: 2, Y: 12, Z: 1.00, B: 1},
	OpDiv:  {X: 2, Y: 72, Z: 4.00, B: 21},
	OpSqrt: {X: 2, Y: 72, Z: 4.00, B: 21},
	OpSum:  {X: 2, Y: 10, Z: 1.35, B: 0},
	OpNeg:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpAnd:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpOr:   {X: 2, Y: 10, Z: 1.00, B: 1},
	OpShf:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpCvt:  {X: 2, Y: 10, Z: 1.00, B: 1},
	OpMov:  {X: 2, Y: 10, Z: 1.00, B: 1}, // vector register move
}

// scalarOnly declares the opcodes that deliberately have no vector form:
// control flow, compares (which set the scalar T flag), and the testing
// halt. macsvet checks that every Op appears in exactly one of timings or
// this set, so adding an opcode without deciding its vector timing fails
// CI instead of silently falling through the model.
var scalarOnly = map[Op]bool{
	OpNop:  true,
	OpLe:   true,
	OpLt:   true,
	OpGt:   true,
	OpGe:   true,
	OpEq:   true,
	OpNe:   true,
	OpJbrs: true,
	OpJmp:  true,
	OpHalt: true,
}

// VectorTiming returns the Table 1 parameters for an opcode executed as a
// vector instruction; ok is false for opcodes with no vector form.
func VectorTiming(op Op) (Timing, bool) {
	t, ok := timings[op]
	return t, ok
}

// ScalarOnly reports whether an opcode is declared to have no vector form.
func ScalarOnly(op Op) bool { return scalarOnly[op] }

// Machine-level constants of the Convex C-240 (paper §2, §3.2).
const (
	// ClockNS is the effective system clock period in nanoseconds.
	ClockNS = 40
	// ClockMHz is the clock rate in MHz, used for MFLOPS conversion.
	ClockMHz = 25.0
	// MemBanks is the number of interleaved memory banks.
	MemBanks = 32
	// BankCycle is the bank busy time in clock cycles.
	BankCycle = 8
	// WordBytes is the memory word size in bytes.
	WordBytes = 8
	// RefreshPeriod is the interval between memory refreshes, in cycles.
	RefreshPeriod = 400
	// RefreshLen is the duration of one refresh, in cycles.
	RefreshLen = 8
	// RefreshFactor is the MACS-bound multiplier applied to groups of four
	// or more successive chimes that each include a memory operation.
	RefreshFactor = 1.02
	// PairMaxReads and PairMaxWrites bound references to one vector
	// register pair within a single chime.
	PairMaxReads  = 2
	PairMaxWrites = 1
)

// CPFToMFLOPS converts an average cycles-per-flop figure to MFLOPS at the
// C-240 clock rate (paper Eq. 4).
func CPFToMFLOPS(avgCPF float64) float64 {
	if avgCPF <= 0 {
		return 0
	}
	return ClockMHz / avgCPF
}
