package isa

// Op is an instruction mnemonic (without suffix).
type Op int

// Instruction mnemonics. The set mirrors the subset of the Convex C-series
// ISA exercised by the paper: memory operations, the add-pipe and
// multiply-pipe arithmetic families, moves, compares and branches.
const (
	OpNop  Op = iota
	OpLd      // load (scalar or vector by destination class)
	OpSt      // store
	OpAdd     // addition (add pipe)
	OpSub     // subtraction (add pipe)
	OpNeg     // negation (add pipe)
	OpAnd     // logical and (add pipe)
	OpOr      // logical or (add pipe)
	OpShf     // shift (add pipe)
	OpCvt     // data type conversion (add pipe)
	OpSum     // vector sum reduction (add pipe, writes scalar)
	OpMul     // multiplication (multiply pipe)
	OpDiv     // division (multiply pipe)
	OpSqrt    // square root (multiply pipe)
	OpMov     // register/immediate move (incl. mov s0,vl)
	OpLe      // compare: T = (op1 <= op2)
	OpLt      // compare: T = (op1 <  op2)
	OpGt      // compare: T = (op1 >  op2)
	OpGe      // compare: T = (op1 >= op2)
	OpEq      // compare: T = (op1 == op2)
	OpNe      // compare: T = (op1 != op2)
	OpJbrs    // conditional branch on T (suffix .t / .f)
	OpJmp     // unconditional branch
	OpHalt    // stop simulation (testing harness convenience)
	numOps
)

var opNames = [...]string{
	OpNop: "nop", OpLd: "ld", OpSt: "st", OpAdd: "add", OpSub: "sub",
	OpNeg: "neg", OpAnd: "and", OpOr: "or", OpShf: "shf", OpCvt: "cvt",
	OpSum: "sum", OpMul: "mul", OpDiv: "div", OpSqrt: "sqrt", OpMov: "mov",
	OpLe: "le", OpLt: "lt", OpGt: "gt", OpGe: "ge", OpEq: "eq", OpNe: "ne",
	OpJbrs: "jbrs", OpJmp: "jmp", OpHalt: "halt",
}

func (op Op) String() string {
	if op >= 0 && int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return "op?"
}

// OpByName resolves a mnemonic; ok is false for unknown mnemonics.
func OpByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return Op(op), true
		}
	}
	return OpNop, false
}

// Suffix is the type suffix of an instruction (.l, .w, .d, .s, .t, .f).
type Suffix int

// Instruction suffixes. SufT/SufF select the branch sense of jbrs.
const (
	SufNone Suffix = iota
	SufL           // .l: 64-bit (long) memory access
	SufW           // .w: 32-bit word integer
	SufD           // .d: 64-bit double
	SufS           // .s: 32-bit single
	SufT           // .t: branch if T set
	SufF           // .f: branch if T clear
)

var sufNames = [...]string{SufNone: "", SufL: "l", SufW: "w", SufD: "d", SufS: "s", SufT: "t", SufF: "f"}

func (s Suffix) String() string {
	if s >= 0 && int(s) < len(sufNames) {
		return sufNames[s]
	}
	return "?"
}

// SuffixByName resolves a suffix letter.
func SuffixByName(name string) (Suffix, bool) {
	for s, n := range sufNames {
		if n == name && name != "" {
			return Suffix(s), true
		}
	}
	return SufNone, name == ""
}

// Pipe identifies a VP function pipe.
type Pipe int

// The three VP pipes (paper §2). Scalar instructions execute on the ASU
// (PipeNone).
const (
	PipeNone Pipe = iota
	PipeLoadStore
	PipeAdd
	PipeMul
)

func (p Pipe) String() string {
	switch p {
	case PipeLoadStore:
		return "load/store"
	case PipeAdd:
		return "add"
	case PipeMul:
		return "multiply"
	default:
		return "scalar"
	}
}

// Pipe returns the VP pipe an opcode uses when executed as a vector
// instruction. The add pipe handles all additions, population counts,
// shifts, logical functions and conversions; the multiply pipe handles
// multiplications, divisions, square roots (paper §2).
func (op Op) Pipe() Pipe {
	switch op {
	case OpLd, OpSt:
		return PipeLoadStore
	case OpAdd, OpSub, OpNeg, OpAnd, OpOr, OpShf, OpCvt, OpSum:
		return PipeAdd
	case OpMul, OpDiv, OpSqrt:
		return PipeMul
	case OpMov:
		// Vector register moves execute on the add pipe; scalar moves are
		// never asked for a pipe (Instr.Pipe checks IsVector first).
		return PipeAdd
	default:
		return PipeNone
	}
}

// OpClass is the MACS workload class of an operation.
type OpClass int

// MACS operation classes: f_a (FP additions), f_m (FP multiplications),
// l (loads), s (stores). ClassOther covers control and moves.
const (
	ClassOther OpClass = iota
	ClassFPAdd
	ClassFPMul
	ClassLoad
	ClassStore
)

func (c OpClass) String() string {
	switch c {
	case ClassFPAdd:
		return "fadd"
	case ClassFPMul:
		return "fmul"
	case ClassLoad:
		return "load"
	case ClassStore:
		return "store"
	default:
		return "other"
	}
}

// Class maps an opcode to its MACS class. Reductions count as additions
// (they run on the add pipe); divisions and square roots count as
// multiplications (multiply pipe).
func (op Op) Class() OpClass {
	switch op {
	case OpAdd, OpSub, OpNeg, OpSum:
		return ClassFPAdd
	case OpMul, OpDiv, OpSqrt:
		return ClassFPMul
	case OpLd:
		return ClassLoad
	case OpSt:
		return ClassStore
	default:
		return ClassOther
	}
}
