package calib

import (
	"math"
	"strings"
	"testing"

	"macs/internal/fasttier"
	"macs/internal/vm"
)

// TestCommittedResidualsMatchFit refits the fast-tier residuals from live
// simulator runs and compares them against the committed table: any drift
// means internal/fasttier/residuals_gen.go is stale for the current
// timing model. Regenerate with
//
//	go run ./cmd/macs calib -residuals internal/fasttier/residuals_gen.go
func TestCommittedResidualsMatchFit(t *testing.T) {
	fits, err := FitResiduals(vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 10 {
		t.Fatalf("fitted %d residuals, want 10 (case-study kernels)", len(fits))
	}
	for _, f := range fits {
		r, ok := fasttier.ResidualFor(f.Signature, f.Class)
		if !ok {
			t.Errorf("%s: committed table has no residual for signature %s (class %s)",
				f.Kernel, f.Signature, f.Class)
			continue
		}
		if r.Kernel != f.Kernel {
			t.Errorf("%s: signature %s resolves to committed kernel %q", f.Kernel, f.Signature, r.Kernel)
		}
		if math.Abs(r.Scale-f.Scale) > 1e-9 {
			t.Errorf("%s: committed scale %.9f, freshly fitted %.9f — residual table is stale",
				f.Kernel, r.Scale, f.Scale)
		}
	}
}

// TestResidualClassFallback exercises the class-keyed lookup path: an
// unknown signature in a calibrated class must fall back to the class
// entry, and a fully unknown program must get the identity residual with
// the conservative default band.
func TestResidualClassFallback(t *testing.T) {
	fits, err := FitResiduals(vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := fasttier.ResidualFor("0000000000000000", fits[0].Class)
	if !ok {
		t.Fatalf("class %s: no fallback residual", fits[0].Class)
	}
	if !strings.Contains(r.Kernel, fits[0].Kernel) {
		t.Errorf("class %s fallback labeled %q, want it to mention %s", fits[0].Class, r.Kernel, fits[0].Kernel)
	}
	r, ok = fasttier.ResidualFor("0000000000000000", "no-such-class")
	if ok {
		t.Fatalf("unknown program unexpectedly calibrated: %+v", r)
	}
	if r.Scale != 1 || r.Band != fasttier.DefaultErrorBand {
		t.Errorf("identity residual = %+v, want scale 1 band %g", r, fasttier.DefaultErrorBand)
	}
}
