// Package calib implements the paper's calibration loops (§3.2, §3.3):
// simple test programs that measure the X/Y/Z/B timing parameters of each
// vector instruction on the (simulated) machine, used to confirm the
// Convex-specified values of Table 1 and to discover the tailgating
// bubble B. It also measures steady-state chime times like those quoted
// in the LFK1 walkthrough (§3.5).
package calib

import (
	"fmt"
	"strings"

	"macs/internal/asm"
	"macs/internal/isa"
	"macs/internal/par"
	"macs/internal/vm"
)

// Result is the calibrated timing of one vector instruction type.
type Result struct {
	Op     isa.Op
	Format string     // assembly format, as in Table 1
	Fit    isa.Timing // measured parameters
	Spec   isa.Timing // the machine's specified parameters
}

// Table1Ops lists the instruction types of the paper's Table 1.
func Table1Ops() []isa.Op {
	return []isa.Op{
		isa.OpLd, isa.OpSt, isa.OpAdd, isa.OpMul,
		isa.OpSub, isa.OpDiv, isa.OpSum, isa.OpNeg,
	}
}

// instrText renders the calibration instance of an opcode.
func instrText(op isa.Op) (string, error) {
	switch op {
	case isa.OpLd:
		return "ld.l arr(a0),v0", nil
	case isa.OpSt:
		return "st.l v1,arr(a0)", nil
	case isa.OpAdd:
		return "add.d v0,v1,v2", nil
	case isa.OpSub:
		return "sub.d v0,v1,v2", nil
	case isa.OpMul:
		return "mul.d v0,v1,v2", nil
	case isa.OpDiv:
		return "div.d v0,v1,v2", nil
	case isa.OpSum:
		return "sum.d v0,s1", nil
	case isa.OpNeg:
		return "neg.d v0,v1", nil
	}
	return "", fmt.Errorf("calib: no calibration loop for %s", op)
}

// calibConfig disables refresh so fits are exact.
func calibConfig(cfg vm.Config) vm.Config {
	cfg.RefreshStalls = false
	return cfg
}

// runCycles assembles and runs a program, returning total cycles.
func runCycles(src string, cfg vm.Config) (int64, error) {
	p, err := asm.Parse(src)
	if err != nil {
		return 0, err
	}
	cpu := vm.New(cfg)
	if err := cpu.Load(p); err != nil {
		return 0, err
	}
	// Nonzero operands avoid division blowups in div calibration.
	ones := make([]float64, isa.VLMax)
	for i := range ones {
		ones[i] = 1.0 + float64(i)/256
	}
	for r := 0; r < isa.NumVRegs; r++ {
		cpu.SetV(r, ones)
	}
	st, err := cpu.Run()
	if err != nil {
		return 0, err
	}
	return st.Cycles, nil
}

// loopSrc builds the steady-state calibration loop for one instruction at
// a given vector length and iteration count.
func loopSrc(instr string, vl, iters int) string {
	return fmt.Sprintf(`
.data arr 65536
	mov #8,vs
	mov #%d,s2
	mov s2,vl
	mov #%d,s0
L1:
	%s
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`, vl, iters, instr)
}

// singleSrc builds a one-shot program (for the X+Y fit); when blank, the
// instruction is omitted to measure the harness baseline.
func singleSrc(instr string, vl int) string {
	body := "\t" + instr + "\n"
	if instr == "" {
		body = ""
	}
	return fmt.Sprintf(`
.data arr 65536
	mov #8,vs
	mov #%d,s2
	mov s2,vl
%s`, vl, body)
}

// perIteration measures the steady-state per-iteration cost of an
// instruction loop at a given VL.
func perIteration(instr string, vl int, cfg vm.Config) (float64, error) {
	const lo, hi = 10, 60
	cLo, err := runCycles(loopSrc(instr, vl, lo), cfg)
	if err != nil {
		return 0, err
	}
	cHi, err := runCycles(loopSrc(instr, vl, hi), cfg)
	if err != nil {
		return 0, err
	}
	return float64(cHi-cLo) / float64(hi-lo), nil
}

// Calibrate measures one instruction type. The method follows §3.2-§3.3:
//
//   - Z from the slope of the steady-state per-iteration time over VL;
//   - B as the per-iteration residue beyond Z*VL (Eq. 13);
//   - X+Y from a single-shot run against an empty-harness baseline, with
//     X fixed at the specified 2 cycles (the calibration loops cannot
//     separate startup from pipe fill, as the paper notes).
func Calibrate(op isa.Op, cfg vm.Config) (Result, error) {
	cfg = calibConfig(cfg)
	instr, err := instrText(op)
	if err != nil {
		return Result{}, err
	}
	spec, ok := isa.VectorTiming(op)
	if !ok {
		return Result{}, fmt.Errorf("calib: %s has no vector timing to calibrate", op)
	}
	res := Result{Op: op, Format: instr, Spec: spec}

	d128, err := perIteration(instr, 128, cfg)
	if err != nil {
		return res, err
	}
	d64, err := perIteration(instr, 64, cfg)
	if err != nil {
		return res, err
	}
	z := (d128 - d64) / 64
	b := d128 - z*128

	single, err := runCycles(singleSrc(instr, 128), cfg)
	if err != nil {
		return res, err
	}
	base, err := runCycles(singleSrc("", 128), cfg)
	if err != nil {
		return res, err
	}
	// single - base = dispatch + X + Y + Z*VL (one instruction, cold).
	xy := float64(single-base) - 1 - z*128
	res.Fit = isa.Timing{
		X: spec.X,
		Y: int(xy+0.5) - spec.X,
		Z: z,
		B: int(b + 0.5),
	}
	return res, nil
}

// CalibrateAll measures every Table 1 instruction type sequentially.
func CalibrateAll(cfg vm.Config) ([]Result, error) {
	return CalibrateAllN(cfg, 1)
}

// CalibrateAllN is CalibrateAll with a bounded fan-out: each instruction
// type is calibrated on its own simulator, up to `workers` concurrently
// (workers < 1 selects one per core). Results are ordered by instruction
// type regardless of fan-out.
func CalibrateAllN(cfg vm.Config, workers int) ([]Result, error) {
	ops := Table1Ops()
	out := make([]Result, len(ops))
	err := par.ForEach(par.Workers(workers), len(ops), func(i int) error {
		r, err := Calibrate(ops[i], cfg)
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ChimeTime measures the steady-state per-iteration cycles of a chime
// given as assembly instructions (the §3.5 per-chime calibration loops).
// Refresh is left as configured, matching the paper's measured values.
func ChimeTime(instrs []string, cfg vm.Config) (float64, error) {
	body := "\t" + strings.Join(instrs, "\n\t")
	src := func(iters int) string {
		return fmt.Sprintf(`
.data arr 65536
	mov #8,vs
	mov #128,s2
	mov s2,vl
	mov #%d,s0
L1:
%s
	sub.w #1,s0
	lt.w #0,s0
	jbrs.t L1
`, iters, body)
	}
	const lo, hi = 10, 60
	cLo, err := runCycles(src(lo), cfg)
	if err != nil {
		return 0, err
	}
	cHi, err := runCycles(src(hi), cfg)
	if err != nil {
		return 0, err
	}
	return float64(cHi-cLo) / float64(hi-lo), nil
}

// VLSweepPoint is one measurement of a VL sweep.
type VLSweepPoint struct {
	VL            int
	CyclesPerElem float64 // steady-state per-iteration cycles / VL
}

// VLSweep measures an instruction's steady-state cost per element across
// vector lengths (paper §3.2: "run time no longer improves when VL drops
// below some operation-specific threshold" — short vectors amortize the
// bubble over fewer elements).
func VLSweep(op isa.Op, vls []int, cfg vm.Config) ([]VLSweepPoint, error) {
	cfg = calibConfig(cfg)
	instr, err := instrText(op)
	if err != nil {
		return nil, err
	}
	var out []VLSweepPoint
	for _, vl := range vls {
		d, err := perIteration(instr, vl, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, VLSweepPoint{VL: vl, CyclesPerElem: d / float64(vl)})
	}
	return out, nil
}

// HalfPerformanceLength returns Hockney's n-1/2 for one instruction type:
// the vector length at which half the asymptotic rate is achieved. For a
// cold (non-tailgated) instruction the time is X+Y+Z*n, so
// n-1/2 = (X+Y)/Z; in steady state the startup is just the bubble, so
// the steady-state n-1/2 is B/Z.
func HalfPerformanceLength(op isa.Op) (cold, steady float64, err error) {
	t, ok := isa.VectorTiming(op)
	if !ok {
		return 0, 0, fmt.Errorf("calib: no vector timing for %s", op)
	}
	return float64(t.X+t.Y) / t.Z, float64(t.B) / t.Z, nil
}
