package calib

import (
	"math"
	"testing"

	"macs/internal/isa"
	"macs/internal/vm"
)

func TestCalibrateMatchesTable1(t *testing.T) {
	results, err := CalibrateAll(vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results, want 8 (Table 1 rows)", len(results))
	}
	for _, r := range results {
		if math.Abs(r.Fit.Z-r.Spec.Z) > 0.02 {
			t.Errorf("%s: fitted Z = %.3f, spec %.3f", r.Op, r.Fit.Z, r.Spec.Z)
		}
		// B within 1 cycle: the fractional-Z reduction quantizes (the
		// paper notes the same uncertainty and sets B = 0 by fiat).
		if d := r.Fit.B - r.Spec.B; d < -1 || d > 1 {
			t.Errorf("%s: fitted B = %d, spec %d", r.Op, r.Fit.B, r.Spec.B)
		}
		if d := r.Fit.Y - r.Spec.Y; d < -2 || d > 2 {
			t.Errorf("%s: fitted Y = %d, spec %d", r.Op, r.Fit.Y, r.Spec.Y)
		}
	}
}

func TestCalibrateDivide(t *testing.T) {
	r, err := Calibrate(isa.OpDiv, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Fit.Z-4.0) > 0.05 {
		t.Errorf("divide Z = %.3f, want 4.0", r.Fit.Z)
	}
	if r.Fit.B != 21 {
		t.Errorf("divide B = %d, want 21", r.Fit.B)
	}
}

func TestCalibrateReduction(t *testing.T) {
	r, err := Calibrate(isa.OpSum, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Fit.Z-1.35) > 0.02 {
		t.Errorf("reduction Z = %.3f, want 1.35", r.Fit.Z)
	}
	if r.Fit.B < 0 || r.Fit.B > 1 {
		t.Errorf("reduction B = %d, want 0 or 1 (ceil quantization)", r.Fit.B)
	}
}

func TestCalibrateUnknownOp(t *testing.T) {
	if _, err := Calibrate(isa.OpJmp, vm.DefaultConfig()); err == nil {
		t.Error("calibrating a control op should fail")
	}
}

// TestChimeTimesLFK1 reproduces the §3.5 per-chime calibration loops:
// chime 1 (ld+mul) near 131, chimes 2-3 (ld+mul+add) near 132, chime 4
// (st) near 132 — the paper measured 131.93, 133.33, 133.33 and 132.35.
func TestChimeTimesLFK1(t *testing.T) {
	cfg := vm.DefaultConfig()
	cases := []struct {
		name   string
		instrs []string
		want   float64
		tol    float64
	}{
		{"chime1", []string{"ld.l arr(a0),v0", "mul.d v0,s1,v1"}, 131, 2.5},
		{"chime2", []string{"ld.l arr(a0),v2", "mul.d v2,s3,v0", "add.d v1,v0,v3"}, 132, 2.5},
		{"chime4", []string{"st.l v0,arr(a0)"}, 132, 2.5},
	}
	for _, tc := range cases {
		got, err := ChimeTime(tc.instrs, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("%s = %.2f cycles, want %v +/- %v (paper §3.5)", tc.name, got, tc.want, tc.tol)
		}
	}
}

// TestChimeTimeNoRefreshIsExact verifies Eq. 13 exactly with refresh off.
func TestChimeTimeNoRefreshIsExact(t *testing.T) {
	cfg := vm.DefaultConfig()
	cfg.RefreshStalls = false
	got, err := ChimeTime([]string{"ld.l arr(a0),v2", "mul.d v2,v1,v0", "add.d v0,v3,v5"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != 132 {
		t.Errorf("chime = %.2f cycles, want exactly 132 (VL + 2+1+1)", got)
	}
}

func TestVLSweepFlattens(t *testing.T) {
	pts, err := VLSweep(isa.OpLd, []int{8, 16, 32, 64, 128}, vm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cost per element decreases monotonically toward Z=1 as the bubble
	// amortizes over more elements.
	for i := 1; i < len(pts); i++ {
		if pts[i].CyclesPerElem > pts[i-1].CyclesPerElem+1e-9 {
			t.Errorf("cost/elem increased at VL=%d: %.3f > %.3f",
				pts[i].VL, pts[i].CyclesPerElem, pts[i-1].CyclesPerElem)
		}
	}
	last := pts[len(pts)-1]
	if last.CyclesPerElem < 1.0 || last.CyclesPerElem > 1.05 {
		t.Errorf("VL=128 cost/elem = %.3f, want ~1.0 (Z)", last.CyclesPerElem)
	}
	first := pts[0]
	if first.CyclesPerElem < 1.2 {
		t.Errorf("VL=8 cost/elem = %.3f, want noticeably above Z", first.CyclesPerElem)
	}
}

func TestHalfPerformanceLength(t *testing.T) {
	cold, steady, err := HalfPerformanceLength(isa.OpLd)
	if err != nil {
		t.Fatal(err)
	}
	// Cold n-1/2 = (2+10)/1 = 12; steady = B/Z = 2.
	if cold != 12 || steady != 2 {
		t.Errorf("ld n-1/2 = %v/%v, want 12/2", cold, steady)
	}
	cold, _, err = HalfPerformanceLength(isa.OpDiv)
	if err != nil || cold != (2+72)/4.0 {
		t.Errorf("div cold n-1/2 = %v, want 18.5", cold)
	}
	if _, _, err := HalfPerformanceLength(isa.OpJmp); err == nil {
		t.Error("control op should have no n-1/2")
	}
}
