package macs_test

import (
	"fmt"
	"log"

	"macs"
)

// ExampleAnalyzeSource runs the full MACS pipeline on a first-difference
// kernel (LFK12's loop body) and prints the bounds hierarchy.
func ExampleAnalyzeSource() {
	const src = `
PROGRAM DIFF
REAL X(2001), Y(2001)
INTEGER N, K
DO K = 1, N
  X(K) = Y(K+1) - Y(K)
ENDDO
END
`
	res, err := macs.AnalyzeSource(src, 1000, func(c *macs.CPU) error {
		nb, _ := c.Memory().SymbolAddr("d_N")
		return c.Memory().WriteI64(nb, 1000)
	})
	if err != nil {
		log.Fatal(err)
	}
	a := res.Analysis
	fmt.Printf("t_MA=%.0f t_MAC=%.0f CPL, chimes=%d\n", a.TMA, a.TMAC, len(a.MACS.Chimes))
	fmt.Printf("measured >= t_MACS: %v\n", res.MeasuredCPL >= a.MACS.CPL)
	// Output:
	// t_MA=2 t_MAC=3 CPL, chimes=3
	// measured >= t_MACS: true
}

// ExampleMABound shows the perfect-index-analysis workload of a loop.
func ExampleMABound() {
	w, err := macs.MABound(`
PROGRAM HYDRO
REAL X(2001), Y(2001), ZX(2048)
REAL Q, R, T
INTEGER N, K
DO K = 1, N
  X(K) = Q + Y(K)*(R*ZX(K+10) + T*ZX(K+11))
ENDDO
END
`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(w)
	fmt.Printf("t_MA = %.1f CPL = %.1f CPF\n", w.Bound(), w.Bound()/float64(w.Flops()))
	// Output:
	// fa=2 fm=3 l=2 s=1
	// t_MA = 3.0 CPL = 0.6 CPF
}

// ExampleKernelByID analyzes one case-study kernel against the paper.
func ExampleKernelByID() {
	k, err := macs.KernelByID(1)
	if err != nil {
		log.Fatal(err)
	}
	r, err := macs.RunKernel(k, macs.DefaultExperimentConfig())
	if err != nil {
		log.Fatal(err)
	}
	tma, tmac, tmacs, _ := r.CPFs()
	fmt.Printf("LFK1: t_MA=%.3f t_MAC=%.3f t_MACS=%.3f CPF (paper: 0.600 0.800 0.840)\n",
		tma, tmac, tmacs)
	fmt.Println("validated:", r.Validated)
	// Output:
	// LFK1: t_MA=0.600 t_MAC=0.800 t_MACS=0.840 CPF (paper: 0.600 0.800 0.840)
	// validated: true
}

// ExampleDiagnose applies the §4.4 rules to a first-difference loop with
// its measured A/X decomposition: memory dominates.
func ExampleDiagnose() {
	res, err := macs.AnalyzeSource(`
PROGRAM P
REAL X(2001), Y(2001)
INTEGER N, K
DO K = 1, N
  X(K) = Y(K+1) - Y(K)
ENDDO
END
`, 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	d := macs.Diagnose(macs.DiagnosisInputs{
		Analysis: res.Analysis,
		TP:       4.0, TA: 3.9, TX: 1.1,
	})
	fmt.Println("primary cause:", d.Primary())
	// Output:
	// primary cause: memory-bound
}
