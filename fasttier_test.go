// Golden and property tests for the analytical fast tier (PR 6).
//
//	TestFastTierGoldenLFK          pins predicted CPL + attribution vs sim
//	TestBoundsMonotonicLFK         t_MA <= t_MAC <= t_MACS <= measured CPL
//	TestBoundsMonotonicRandom      same hierarchy over random stride/VL kernels
package macs_test

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"macs"
	"macs/internal/compiler"
	"macs/internal/lfk"
	"macs/internal/vm"
)

// fastTierBand is the calibrated error band stated by the residual table
// (internal/fasttier/residuals_gen.go): fast-tier predicted CPL must land
// within ±2% of the simulator's measured CPL for every calibration
// kernel. The golden values below additionally pin both sides exactly —
// the schedule replay is bit-exact today, so any drift in either the
// simulator or the replay shows up as a cycle-count diff, not just a
// band violation.
const fastTierBand = 0.02

// fastTierGolden pins, per LFK: the simulated (and, with all residual
// scales at 1.0, predicted) cycle count and the coarse kernel class the
// residual lookup falls back to when a signature is unknown.
var fastTierGolden = map[int]struct {
	Cycles int64
	Class  string
}{
	1:  {4573, "c4-m4-f5"},
	2:  {1550, "c6-m6-f4"},
	3:  {2459, "c2-m2-f2"},
	4:  {2667, "c2-m2-f2"},
	6:  {16977, "c2-m2-f2"},
	7:  {11350, "c10-m10-f16"},
	8:  {6531, "c28-m21-f36"},
	9:  {1291, "c11-m11-f17"},
	10: {2210, "c20-m20-f9"},
	12: {3293, "c3-m3-f1"},
}

// TestFastTierGoldenLFK is the fast tier's accuracy gate: for all ten
// LFKs the analytical prediction must match the golden cycle count, land
// inside the stated error band of a live primed simulation, and
// reproduce the simulator's stall attribution bucket for bucket.
func TestFastTierGoldenLFK(t *testing.T) {
	cfg := vm.DefaultConfig()
	an := macs.NewAnalyzer(macs.DefaultVMConfig())
	for _, k := range lfk.All() {
		want, ok := fastTierGolden[k.ID]
		if !ok {
			t.Fatalf("lfk%d: no golden entry", k.ID)
		}
		c, err := lfk.Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		st, _, err := c.Run(cfg)
		if err != nil {
			t.Fatalf("lfk%d sim: %v", k.ID, err)
		}
		measuredCPL := float64(st.Cycles) / float64(k.Elements)
		fast, err := an.PredictSource(k.Source, int64(k.Elements), k.DataInts())
		if err != nil {
			t.Fatalf("lfk%d predict: %v", k.ID, err)
		}
		p := fast.Prediction

		if st.Cycles != want.Cycles {
			t.Errorf("lfk%d: simulator measured %d cycles, golden %d", k.ID, st.Cycles, want.Cycles)
		}
		if p.Cycles != want.Cycles {
			t.Errorf("lfk%d: fast tier predicted %d cycles, golden %d", k.ID, p.Cycles, want.Cycles)
		}
		rel := math.Abs(p.CPL-measuredCPL) / measuredCPL
		if rel > fastTierBand {
			t.Errorf("lfk%d: predicted CPL %.4f vs measured %.4f — relative error %.4f exceeds band %.2f",
				k.ID, p.CPL, measuredCPL, rel, fastTierBand)
		}
		if !p.Calibrated {
			t.Errorf("lfk%d: prediction not calibrated (signature %s unknown?)", k.ID, p.Signature)
		}
		if p.ErrorBand != fastTierBand {
			t.Errorf("lfk%d: ErrorBand = %v, want %v", k.ID, p.ErrorBand, fastTierBand)
		}
		if p.Class != want.Class {
			t.Errorf("lfk%d: class %q, want %q", k.ID, p.Class, want.Class)
		}
		if got, wantAttr := p.Attr.Totals(), st.Attr.Totals(); !reflect.DeepEqual(got, wantAttr) {
			t.Errorf("lfk%d: attribution diverges from simulator:\nfast %v\nsim  %v", k.ID, got, wantAttr)
		}
		if err := p.Attr.Conserved(p.Cycles); err != nil {
			t.Errorf("lfk%d: %v", k.ID, err)
		}
	}
}

// checkHierarchy asserts the MACS hierarchy in CPL terms: looser models
// can never charge more time than tighter ones, and no model may charge
// more than the machine measures. (In the paper's MFLOPS terms this is
// MA >= MAC >= MACS >= measured.) slack absorbs loop wrap-around: the
// simulator's last iteration can retire up to one chime boundary early
// relative to the steady-state partition.
func checkHierarchy(t *testing.T, label string, a macs.Analysis, measuredCPL, slack float64) {
	t.Helper()
	if a.TMA > a.TMAC {
		t.Errorf("%s: t_MA %.4f > t_MAC %.4f", label, a.TMA, a.TMAC)
	}
	if a.TMAC > a.MACS.CPL {
		t.Errorf("%s: t_MAC %.4f > t_MACS %.4f", label, a.TMAC, a.MACS.CPL)
	}
	if a.MACS.CPL > measuredCPL+slack {
		t.Errorf("%s: t_MACS %.4f exceeds measured CPL %.4f (+%.1f slack) — bound not a bound",
			label, a.MACS.CPL, measuredCPL, slack)
	}
}

// TestBoundsMonotonicLFK checks the hierarchy on the ten calibration
// kernels, where the measured CPL is steady-state and needs no slack.
func TestBoundsMonotonicLFK(t *testing.T) {
	cfg := vm.DefaultConfig()
	for _, k := range lfk.All() {
		a, err := macs.BoundSource(k.Source)
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		c, err := lfk.Compile(k, compiler.DefaultOptions())
		if err != nil {
			t.Fatalf("lfk%d: %v", k.ID, err)
		}
		st, _, err := c.Run(cfg)
		if err != nil {
			t.Fatalf("lfk%d sim: %v", k.ID, err)
		}
		measuredCPL := float64(st.Cycles) / float64(k.Elements)
		checkHierarchy(t, fmt.Sprintf("lfk%d", k.ID), a, measuredCPL, 0)
	}
}

// randomStrideKernel emits a small vectorizable kernel with a randomized
// DO stride (memory stride follows it) and a randomized trip count whose
// residue exercises different final vector lengths. Literal loop bounds
// keep it self-contained — no priming. Every statement carries a unique
// literal constant so the compiler cannot common-subexpression away
// work the source-level MA model charges (CSE would legitimately put
// t_MAC below t_MA and is not the property under test).
func randomStrideKernel(r *rand.Rand) (string, int64) {
	step := 1 + r.Intn(4)          // stride 1..4
	n := 64 + r.Intn(900)          // trip-count span: varies final strip VL
	iters := int64((n-1)/step) + 1 // DO K = 1, n, step
	var b strings.Builder
	b.WriteString("PROGRAM RANDK\n")
	b.WriteString("REAL A(4096), B(4096), C(4096), D(4096)\n")
	b.WriteString("INTEGER K\n")
	fmt.Fprintf(&b, "DO K = 1, %d, %d\n", n, step)
	stmts := 1 + r.Intn(3)
	for s := 0; s < stmts; s++ {
		dst := []string{"C", "D"}[r.Intn(2)]
		uniq := s + 3
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&b, "  %s(K) = A(K) + B(K) * %d.0\n", dst, uniq)
		case 1:
			fmt.Fprintf(&b, "  %s(K) = A(K) * %d.5 + B(K) * %d.25\n", dst, uniq, uniq)
		default:
			fmt.Fprintf(&b, "  %s(K) = A(K) * %d.75 + B(K)\n", dst, uniq)
		}
	}
	b.WriteString("ENDDO\nEND\n")
	return b.String(), iters
}

// TestBoundsMonotonicRandom fuzzes the hierarchy over random stride/VL
// configurations (seeded, like internal/vm's property tests). Short
// strided loops see wrap-around effects, so the measured side gets one
// CPL of slack — the same allowance internal/vm's bound property uses.
func TestBoundsMonotonicRandom(t *testing.T) {
	cfg := macs.DefaultVMConfig()
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		src, iters := randomStrideKernel(r)
		res, err := macs.AnalyzeSourceVM(src, iters, cfg, nil)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		checkHierarchy(t, fmt.Sprintf("trial %d", trial), res.Analysis, res.MeasuredCPL, 1)
	}
}

// TestFastTierInterval: a kernel with a bounded data-dependent branch
// (a float compare whose two outcomes reconverge) is refused by the
// single-path replay but served by the path enumerator, and the
// enumerated [CyclesLo, CyclesHi] envelope contains the simulator's
// measurement. Second call pins memoization.
func TestFastTierInterval(t *testing.T) {
	const src = `
PROGRAM DATADEP
REAL X(128), S
INTEGER N, K
DO K = 1, N
  X(K) = X(K) + S
ENDDO
IF (S .LT. 1.0) GOTO 10
10 CONTINUE
END
`
	an := macs.NewAnalyzer(macs.DefaultVMConfig())
	ints := map[string]int64{"d_N": 16}
	if _, err := an.PredictSource(src, 16, ints); !errors.Is(err, macs.ErrDataDependent) {
		t.Fatalf("single-path replay error = %v, want ErrDataDependent", err)
	}
	fast, err := an.PredictSourceInterval(src, 16, ints)
	if err != nil {
		t.Fatalf("interval predict: %v", err)
	}
	p := fast.Prediction
	if !p.Interval {
		t.Fatalf("prediction not marked interval: %+v", p)
	}
	if p.Paths < 2 {
		t.Errorf("paths = %d, want >= 2 (one per branch outcome)", p.Paths)
	}
	if p.CyclesLo <= 0 || p.CyclesLo > p.CyclesHi || p.Cycles != p.CyclesHi {
		t.Fatalf("implausible envelope: lo=%d hi=%d point=%d", p.CyclesLo, p.CyclesHi, p.Cycles)
	}
	if p.CPLLo <= 0 || p.CPLLo > p.CPLHi {
		t.Fatalf("implausible CPL envelope: [%g, %g]", p.CPLLo, p.CPLHi)
	}
	if !strings.Contains(fast.Report(), "interval t_p") {
		t.Errorf("report does not state the interval:\n%s", fast.Report())
	}

	res, err := an.AnalyzeSource(src, 16, func(c *macs.CPU) error {
		base, ok := c.Memory().SymbolAddr("d_N")
		if !ok {
			return fmt.Errorf("no symbol d_N")
		}
		return c.Memory().WriteI64(base, 16)
	})
	if err != nil {
		t.Fatalf("simulate: %v", err)
	}
	if res.Stats.Cycles < p.CyclesLo || res.Stats.Cycles > p.CyclesHi {
		t.Errorf("simulated %d cycles outside enumerated [%d, %d]",
			res.Stats.Cycles, p.CyclesLo, p.CyclesHi)
	}

	again, err := an.PredictSourceInterval(src, 16, ints)
	if err != nil {
		t.Fatalf("second interval predict: %v", err)
	}
	if q := again.Prediction; q.CyclesLo != p.CyclesLo || q.CyclesHi != p.CyclesHi || q.Paths != p.Paths {
		t.Errorf("memoized interval diverges: first [%d,%d]/%d, second [%d,%d]/%d",
			p.CyclesLo, p.CyclesHi, p.Paths, q.CyclesLo, q.CyclesHi, q.Paths)
	}
}
