// Package macs is the public API of this reproduction of "Hierarchical
// Performance Modeling with MACS: A Case Study of the Convex C-240"
// (Boyd & Davidson, ISCA 1993).
//
// The package ties together the full pipeline the paper describes:
//
//   - compile a Fortran-subset kernel with the vectorizing compiler that
//     stands in for the Convex fc compiler;
//   - compute the MA, MAC and MACS performance bounds for its inner loop
//     (the paper's primary contribution, in internal/core);
//   - execute the compiled code on the cycle-level Convex C-240 simulator
//     and measure actual performance t_p;
//   - generate and run the A-process and X-process codes (t_a, t_x);
//   - regenerate every table and figure of the paper's evaluation.
//
// Quick start:
//
//	// bounds + simulated measurement; iterations converts cycles to
//	// CPL, prime (may be nil) sets memory inputs before the run.
//	res, err := macs.AnalyzeSource(src, iterations, prime)
//	fmt.Println(res.Report())
//
//	// bounds only, no simulation:
//	a, err := macs.BoundSource(src)
//
// The same pipeline is also available as a long-running HTTP service:
// cmd/macsd serves POST /v1/analyze, /v1/batch (many kernels per request,
// per-kernel NDJSON streaming), /v1/bound, /v1/ax and GET /v1/lfk/{id}
// through internal/service, with a worker pool, a content-addressed result
// cache (optionally persisted across restarts via -cache-dir) and JSON
// metrics on /metrics (see the README's "macsd" section).
//
// The subsystems are exposed through type aliases so the whole machinery
// remains one import for downstream users; power users can reach the
// internal packages directly from within this module.
package macs

import (
	"context"
	"fmt"
	"strings"

	"macs/internal/advisor"
	"macs/internal/asm"
	"macs/internal/ax"
	"macs/internal/calib"
	"macs/internal/compiler"
	"macs/internal/core"
	"macs/internal/depgraph"
	"macs/internal/experiments"
	"macs/internal/fasttier"
	"macs/internal/ftn"
	"macs/internal/lfk"
	"macs/internal/obs"
	"macs/internal/vectorize"
	"macs/internal/verify"
	"macs/internal/vm"
)

// Re-exported types. These aliases are the supported public surface.
type (
	// Workload holds MACS operation counts (f_a, f_m, loads, stores).
	Workload = core.Workload
	// Analysis is the complete MA/MAC/MACS bounds hierarchy.
	Analysis = core.Analysis
	// Rules configures chime formation (chaining, pair rule, bubbles...).
	Rules = core.Rules
	// Chime is one group of concurrently executing vector instructions.
	Chime = core.Chime
	// Program is an assembled Convex-style program.
	Program = asm.Program
	// Stats aggregates a simulation run.
	Stats = vm.Stats
	// CPU is one simulated Convex C-240 processor.
	CPU = vm.CPU
	// VMConfig configures the simulator: a Machine plus run-bound knobs.
	VMConfig = vm.Config
	// Machine is the hardware description embedded in VMConfig; its
	// canonical Fingerprint keys every per-machine cache.
	Machine = vm.Machine
	// CompilerOptions configures the vectorizing compiler.
	CompilerOptions = compiler.Options
	// Kernel is one Livermore kernel of the case study.
	Kernel = lfk.Kernel
	// KernelResult bundles bounds, measurement and validation status.
	KernelResult = experiments.KernelResult
	// AXMeasurement holds t_p, t_a and t_x cycle counts.
	AXMeasurement = ax.Measurement
	// ExperimentConfig configures table/figure regeneration.
	ExperimentConfig = experiments.Config
	// Attribution is the per-lane stall-attribution ledger of a run (issue
	// plus attributed stall cycles equal total cycles on every lane).
	Attribution = vm.Attribution
	// StallCause classifies one attributed non-issue cycle.
	StallCause = vm.StallCause
	// TraceEvent records the timing of one vector instruction.
	TraceEvent = vm.TraceEvent
	// Diagnostic is one finding of the static program checker.
	Diagnostic = verify.Diagnostic
	// VerifyError is the error a rejected program carries: its full
	// diagnostic list (errors.As-compatible).
	VerifyError = verify.Error
	// Severity grades a checker Diagnostic.
	Severity = verify.Severity
	// Prediction is the analytical fast tier's answer for one program:
	// predicted cycles, calibrated CPL with its error band, and predicted
	// per-lane stall attribution.
	Prediction = fasttier.Prediction
	// FastTierConfig configures the analytical fast tier.
	FastTierConfig = fasttier.Config
)

// ErrDataDependent marks a program the fast tier cannot predict (its
// timing depends on data the tier does not model); callers fall back to
// the exact tier. Test with errors.Is.
var ErrDataDependent = fasttier.ErrDataDependent

// Tier selects how an analysis request is served: cycle-accurate
// simulation, the analytical fast tier, or both (fast answer first, exact
// verification after).
//
// macsvet:exhaustive
type Tier int

const (
	// TierExact runs the cycle-level simulator (the default).
	TierExact Tier = iota
	// TierFast serves the analytical prediction only, in microseconds.
	TierFast
	// TierAuto serves the fast prediction and verifies against the
	// simulator (asynchronously in the service), recording divergence.
	TierAuto

	// NumTiers is the number of serving tiers.
	NumTiers
)

var tierNames = [NumTiers]string{"exact", "fast", "auto"}

func (t Tier) String() string {
	if t < 0 || t >= NumTiers {
		return fmt.Sprintf("tier(%d)", int(t))
	}
	return tierNames[t]
}

// ParseTier parses a tier name ("exact", "fast", "auto"); the empty
// string selects TierExact.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "", "exact":
		return TierExact, nil
	case "fast":
		return TierFast, nil
	case "auto":
		return TierAuto, nil
	}
	return TierExact, fmt.Errorf("macs: unknown tier %q (want exact, fast or auto)", s)
}

// Diagnostic severities, least to most severe.
const (
	SevInfo    = verify.SevInfo
	SevWarning = verify.SevWarning
	SevError   = verify.SevError
)

// Defaults for the C-240 configuration.
func DefaultRules() Rules                       { return core.DefaultRules() }
func DefaultVMConfig() VMConfig                 { return vm.DefaultConfig() }
func DefaultMachine() Machine                   { return vm.DefaultMachine() }
func DefaultCompilerOptions() CompilerOptions   { return compiler.DefaultOptions() }
func DefaultExperimentConfig() ExperimentConfig { return experiments.Default() }

// NewCPU creates a simulator instance.
func NewCPU(cfg VMConfig) *CPU { return vm.New(cfg) }

// Compile compiles Fortran-subset source to Convex-style assembly.
func Compile(src string, opts CompilerOptions) (*Program, error) {
	return compiler.Compile(src, opts)
}

// ParseAsm parses assembly text into a Program.
func ParseAsm(src string) (*Program, error) { return asm.Parse(src) }

// DataSymbol maps a source-level variable name to its compiled data
// symbol ("N" becomes "d_N") — the key space of fast-tier priming maps.
func DataSymbol(name string) string { return compiler.DataSym(name) }

// Verify statically checks a program (use-before-def, VL/VS discipline,
// branch targets, static memory bounds, chime-resource conflicts) and
// returns every finding, most severe first per instruction.
func Verify(p *Program) []Diagnostic { return verify.Check(p) }

// VerifyProgram gates a program: nil when Verify reports no
// error-severity findings, otherwise a *VerifyError holding them all.
// AnalyzeSource and BoundSource apply this gate to compiled code before
// the model or the simulator ever see it.
func VerifyProgram(p *Program) error { return verify.Must(p) }

// Kernels returns the ten LFK kernels of the paper's case study.
func Kernels() []*Kernel { return lfk.All() }

// KernelByID returns one case-study kernel (1,2,3,4,6,7,8,9,10,12).
func KernelByID(id int) (*Kernel, error) { return lfk.ByID(id) }

// RunKernel compiles, bounds, measures and validates one kernel.
func RunKernel(k *Kernel, cfg ExperimentConfig) (KernelResult, error) {
	return experiments.RunKernel(k, cfg)
}

// MABound computes the MA workload of a source's inner loop (perfect
// index analysis on the high-level code).
func MABound(src string) (Workload, error) { return compiler.MAWorkload(src) }

// MACSBoundOf computes t_MACS (CPL) for a compiled program's inner
// vectorized loop at the given vector length.
func MACSBoundOf(p *Program, vl int, rules Rules) (float64, error) {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return 0, fmt.Errorf("macs: program has no vectorized inner loop")
	}
	return core.MACSBound(loop.Body, vl, rules).CPL, nil
}

// Result is the outcome of AnalyzeSource: the full hierarchy plus the
// measured run.
type Result struct {
	Analysis Analysis
	Stats    Stats
	Program  *Program
	// MeasuredCPL is cycles per inner-loop iteration; Iterations is the
	// iteration count used for the conversion.
	MeasuredCPL float64
	Iterations  int64
	// Trace holds the run's vector timing events when the VM config enables
	// tracing (Trace or TraceRing); export with ChromeTrace.
	Trace []TraceEvent
}

// boundSource compiles src and computes the MA/MAC/MACS hierarchy of its
// inner loop under the given configuration. It is the shared front half
// of BoundSource and AnalyzeSource. The compile, verify and bound stages
// each record a span on the trace riding ctx (no-ops when none does).
func boundSource(ctx context.Context, src string, opts CompilerOptions, vl int, rules Rules) (*Program, Analysis, error) {
	var a Analysis
	_, sp := obs.Start(ctx, "compile")
	prog, err := compiler.Compile(src, opts)
	sp.End()
	if err != nil {
		return nil, a, err
	}
	_, sp = obs.Start(ctx, "verify")
	err = verify.Must(prog)
	sp.End()
	if err != nil {
		return prog, a, err
	}
	_, sp = obs.Start(ctx, "bound")
	a, err = boundProgram(src, prog, vl, rules)
	sp.End()
	return prog, a, err
}

// boundProgram is the model half of boundSource: MA workload from the
// source, chime partition from the compiled loop, critical path from the
// dependence graph.
func boundProgram(src string, prog *Program, vl int, rules Rules) (Analysis, error) {
	var a Analysis
	parsed, err := ftn.Parse(src)
	if err != nil {
		return a, err
	}
	loopStmt, ok := compiler.InnerLoop(parsed)
	if !ok {
		return a, fmt.Errorf("macs: source has no DO loop")
	}
	ma, err := vectorize.MAWorkload(parsed, loopStmt)
	if err != nil {
		return a, err
	}
	loop, ok := asm.InnerVectorLoop(prog)
	if !ok {
		return a, fmt.Errorf("macs: compiled code has no vectorized inner loop")
	}
	a = core.Analyze(ma, loop.Body, vl, rules)
	if cp, _, ok := depgraph.Analyze(prog, vl, depgraph.DefaultParams()); ok {
		a.TCP = cp.CPL
	}
	return a, nil
}

// BoundCompiled computes the MA/MAC/MACS hierarchy (plus the t_CP
// critical path) of an already-compiled program under an explicit vector
// length and rule set — the model half of BoundSource for callers that
// compile once and bound many machine variants (the explore engine). src
// must be the source prog was compiled from: the MA workload comes from
// the high-level code.
func BoundCompiled(src string, prog *Program, vl int, rules Rules) (Analysis, error) {
	return boundProgram(src, prog, vl, rules)
}

// BoundSource compiles src and computes the MA/MAC/MACS bounds hierarchy
// of its inner loop without running the simulator — the cheap half of
// AnalyzeSource, for callers that only want the model.
func BoundSource(src string) (Analysis, error) {
	return BoundSourceCtx(context.Background(), src)
}

// BoundSourceCtx is BoundSource under a context: stage spans (compile,
// verify, bound) are recorded on the trace riding ctx, if any.
func BoundSourceCtx(ctx context.Context, src string) (Analysis, error) {
	_, a, err := boundSource(ctx, src, compiler.DefaultOptions(), vm.DefaultConfig().VLMax, core.DefaultRules())
	return a, err
}

// AnalyzeSource runs the full MACS pipeline on a kernel source: compile,
// bound, simulate. iterations tells the conversion to CPL how many
// inner-loop iterations the program executes; prime (optional) sets
// memory inputs before the run.
func AnalyzeSource(src string, iterations int64, prime func(*CPU) error) (Result, error) {
	return AnalyzeSourceVM(src, iterations, vm.DefaultConfig(), prime)
}

// AnalyzeSourceVM is AnalyzeSource with an explicit simulator
// configuration: use it to enable tracing (Trace/TraceRing), model memory
// contention (MemSlowdown) or change the machine. The bounds are computed
// with the configuration's chime rules and vector length. Every call
// builds a fresh simulator; callers on a hot path should hold an Analyzer
// instead, which recycles simulator state through a pool.
func AnalyzeSourceVM(src string, iterations int64, cfg VMConfig, prime func(*CPU) error) (Result, error) {
	return AnalyzeSourceVMCtx(context.Background(), src, iterations, cfg, prime)
}

// compilerOptionsFor clamps the default compile options to a simulator
// configuration's machine: a program's strip length is fixed at compile
// time (the strip loop advances by the compile-time VL), so a machine
// with VLMax below the ISA ceiling needs its loops strip-mined at its
// own length — compiled longer, the hardware would clamp every strip and
// silently skip elements.
func compilerOptionsFor(cfg VMConfig) CompilerOptions {
	opts := compiler.DefaultOptions()
	if cfg.VLMax > 0 && cfg.VLMax < opts.VL {
		opts.VL = cfg.VLMax
	}
	return opts
}

// AnalyzeSourceVMCtx is AnalyzeSourceVM under a context: every pipeline
// stage (compile, verify, bound, load, prime, simulate) records a span on
// the trace riding ctx, and the run's vector timing events are attached
// to the trace as simulator lanes. Without a trace on ctx the overhead is
// a handful of nil checks.
func AnalyzeSourceVMCtx(ctx context.Context, src string, iterations int64, cfg VMConfig, prime func(*CPU) error) (Result, error) {
	return analyzeOn(ctx, vm.New(cfg), src, iterations, cfg, prime)
}

// analyzeOn runs the full pipeline on a ready (fresh or pooled-and-reset)
// simulator: the shared back half of AnalyzeSourceVM and
// Analyzer.AnalyzeSource.
func analyzeOn(ctx context.Context, cpu *vm.CPU, src string, iterations int64, cfg VMConfig, prime func(*CPU) error) (Result, error) {
	var res Result
	prog, a, err := boundSource(ctx, src, compilerOptionsFor(cfg), cfg.VLMax, cfg.Rules)
	res.Program = prog
	if err != nil {
		return res, err
	}
	res.Analysis = a
	_, sp := obs.Start(ctx, "load")
	err = cpu.Load(prog)
	sp.End()
	if err != nil {
		return res, err
	}
	if prime != nil {
		_, sp = obs.Start(ctx, "prime")
		err = prime(cpu)
		sp.End()
		if err != nil {
			return res, err
		}
	}
	_, sim := obs.Start(ctx, "simulate")
	res.Stats, err = cpu.Run()
	res.Trace = cpu.TraceEvents()
	if tr := obs.FromContext(ctx); tr != nil && len(res.Trace) > 0 {
		tr.AddLanes(sim, vm.LaneEvents(res.Trace))
	}
	sim.End()
	if err != nil {
		return res, err
	}
	res.Iterations = iterations
	if iterations > 0 {
		res.MeasuredCPL = float64(res.Stats.Cycles) / float64(iterations)
	}
	return res, nil
}

// Analyzer is the pooled front door to the full pipeline: it behaves
// exactly like AnalyzeSourceVM with a fixed configuration, but recycles
// simulator state (memory image, vector registers, memoized stream-stall
// tables) across calls instead of allocating megabytes per analysis. It
// is safe for concurrent use — the analysis service holds one per
// configuration and shares it across its worker pool.
type Analyzer struct {
	cfg  VMConfig
	pool *vm.Pool
	pred *fasttier.Predictor
}

// NewAnalyzer creates an Analyzer for one simulator configuration.
func NewAnalyzer(cfg VMConfig) *Analyzer {
	return &Analyzer{
		cfg:  cfg,
		pool: vm.NewPool(cfg),
		pred: fasttier.NewPredictor(calib.FastTierConfig(cfg)),
	}
}

// Config returns the analyzer's simulator configuration.
func (a *Analyzer) Config() VMConfig { return a.cfg }

// AnalyzeSource runs the full pipeline — compile, bound, simulate — on a
// pooled simulator. Results are identical to AnalyzeSourceVM with the
// analyzer's configuration (the fast-path differential tests gate on it).
func (a *Analyzer) AnalyzeSource(src string, iterations int64, prime func(*CPU) error) (Result, error) {
	return a.AnalyzeSourceCtx(context.Background(), src, iterations, prime)
}

// AnalyzeSourceCtx is AnalyzeSource under a context: stage spans (plus a
// pool-checkout span covering simulator acquisition) land on the trace
// riding ctx, and the run's vector timing events are attached as
// simulator lanes.
func (a *Analyzer) AnalyzeSourceCtx(ctx context.Context, src string, iterations int64, prime func(*CPU) error) (Result, error) {
	_, sp := obs.Start(ctx, "pool-checkout")
	cpu := a.pool.Get()
	sp.End()
	defer a.pool.Put(cpu)
	return analyzeOn(ctx, cpu, src, iterations, a.cfg, prime)
}

// PoolStats reports the analyzer pool's created and recycled CPU counts.
func (a *Analyzer) PoolStats() (created, returned int64) { return a.pool.Stats() }

// FastResult is the outcome of the analytical fast tier: the same bounds
// hierarchy as Result, with a calibrated prediction in place of a
// simulator measurement.
type FastResult struct {
	Analysis   Analysis
	Program    *Program
	Prediction Prediction
	Iterations int64
}

// Report renders the hierarchy and prediction as text, the fast-tier
// analogue of Result.Report.
func (r FastResult) Report() string {
	var b strings.Builder
	a := r.Analysis
	fmt.Fprintf(&b, "MA workload:  %s  -> t_MA  = %.3f CPL\n", a.MA, a.TMA)
	fmt.Fprintf(&b, "MAC workload: %s  -> t_MAC = %.3f CPL\n", a.MAC, a.TMAC)
	fmt.Fprintf(&b, "t_MACS = %.3f CPL over %d chimes (t_MACS^f %.3f, t_MACS^m %.3f)\n",
		a.MACS.CPL, len(a.MACS.Chimes), a.MACSF.CPL, a.MACSM.CPL)
	if a.TCP > 0 {
		fmt.Fprintf(&b, "t_CP   = %.3f CPL (dependence critical path)\n", a.TCP)
	}
	if r.Prediction.CPL > 0 {
		fmt.Fprintf(&b, "predicted t_p = %.3f CPL ±%.1f%% (%d cycles, %d iterations, %s)\n",
			r.Prediction.CPL, 100*r.Prediction.ErrorBand, r.Prediction.Cycles,
			r.Iterations, calibLabel(r.Prediction))
	}
	if r.Prediction.Interval {
		fmt.Fprintf(&b, "interval t_p = [%.3f, %.3f] CPL over %d enumerated paths (cycles [%d, %d])\n",
			r.Prediction.CPLLo, r.Prediction.CPLHi, r.Prediction.Paths,
			r.Prediction.CyclesLo, r.Prediction.CyclesHi)
	}
	return b.String()
}

func calibLabel(p Prediction) string {
	if p.Calibrated {
		return "calibrated: " + p.Class
	}
	return "uncalibrated"
}

// PredictSource serves a source through the analytical fast tier:
// compile, bound, and predict cycles/CPL/attribution from the compiled
// schedule without simulating. ints primes integer inputs by data-symbol
// name (see Kernel.DataInts); iterations converts predicted cycles to
// CPL. Programs whose timing depends on unmodeled data return
// ErrDataDependent (wrapped) — fall back to AnalyzeSource.
func (a *Analyzer) PredictSource(src string, iterations int64, ints map[string]int64) (FastResult, error) {
	return a.PredictSourceCtx(context.Background(), src, iterations, ints)
}

// PredictSourceCtx is PredictSource under a context: the compile, verify
// and bound stages plus a "predict" span land on the trace riding ctx.
func (a *Analyzer) PredictSourceCtx(ctx context.Context, src string, iterations int64, ints map[string]int64) (FastResult, error) {
	var res FastResult
	prog, an, err := boundSource(ctx, src, compilerOptionsFor(a.cfg), a.cfg.VLMax, a.cfg.Rules)
	res.Program = prog
	if err != nil {
		return res, err
	}
	res.Analysis = an
	res.Iterations = iterations
	_, sp := obs.Start(ctx, "predict")
	res.Prediction, err = a.pred.Predict(prog, iterations, ints)
	sp.End()
	return res, err
}

// PredictSourceInterval serves a source whose timing depends on
// unmodeled data through the fast tier's path enumerator: every admitted
// branch outcome is replayed bit-exactly and the prediction carries the
// [CyclesLo, CyclesHi] envelope over all of them (the simulated run is
// guaranteed to land inside). Programs whose data-dependent control flow
// is not boundedly enumerable still return ErrDataDependent (wrapped).
func (a *Analyzer) PredictSourceInterval(src string, iterations int64, ints map[string]int64) (FastResult, error) {
	return a.PredictSourceIntervalCtx(context.Background(), src, iterations, ints)
}

// PredictSourceIntervalCtx is PredictSourceInterval under a context: the
// compile, verify and bound stages plus a "predict-interval" span land on
// the trace riding ctx.
func (a *Analyzer) PredictSourceIntervalCtx(ctx context.Context, src string, iterations int64, ints map[string]int64) (FastResult, error) {
	var res FastResult
	prog, an, err := boundSource(ctx, src, compilerOptionsFor(a.cfg), a.cfg.VLMax, a.cfg.Rules)
	res.Program = prog
	if err != nil {
		return res, err
	}
	res.Analysis = an
	res.Iterations = iterations
	_, sp := obs.Start(ctx, "predict-interval")
	res.Prediction, err = a.pred.PredictInterval(prog, iterations, ints)
	sp.End()
	return res, err
}

// PredictSource is the one-shot form of Analyzer.PredictSource under a
// simulator configuration's machine parameters.
func PredictSource(src string, iterations int64, cfg VMConfig, ints map[string]int64) (FastResult, error) {
	var res FastResult
	prog, an, err := boundSource(context.Background(), src, compilerOptionsFor(cfg), cfg.VLMax, cfg.Rules)
	res.Program = prog
	if err != nil {
		return res, err
	}
	res.Analysis = an
	res.Iterations = iterations
	res.Prediction, err = fasttier.Predict(prog, iterations, ints, calib.FastTierConfig(cfg))
	return res, err
}

// ChromeTrace renders vector timing events (Result.Trace) as a Chrome
// trace_event JSON document for chrome://tracing or Perfetto.
func ChromeTrace(events []TraceEvent) ([]byte, error) { return vm.ChromeTrace(events) }

// LaneEvents converts vector timing events into the generic per-lane
// shape obs.ChromeTrace merges with pipeline spans — use it to attach a
// run's Result.Trace to an obs.Trace by hand; the Ctx entry points do
// this automatically.
func LaneEvents(events []TraceEvent) []obs.LaneEvent { return vm.LaneEvents(events) }

// Report renders the hierarchy of one Result as text.
func (r Result) Report() string {
	var b strings.Builder
	a := r.Analysis
	fmt.Fprintf(&b, "MA workload:  %s  -> t_MA  = %.3f CPL\n", a.MA, a.TMA)
	fmt.Fprintf(&b, "MAC workload: %s  -> t_MAC = %.3f CPL\n", a.MAC, a.TMAC)
	fmt.Fprintf(&b, "t_MACS = %.3f CPL over %d chimes (t_MACS^f %.3f, t_MACS^m %.3f)\n",
		a.MACS.CPL, len(a.MACS.Chimes), a.MACSF.CPL, a.MACSM.CPL)
	if a.TCP > 0 {
		fmt.Fprintf(&b, "t_CP   = %.3f CPL (dependence critical path)\n", a.TCP)
	}
	if r.MeasuredCPL > 0 {
		fmt.Fprintf(&b, "measured t_p = %.3f CPL (%d cycles, %d iterations)\n",
			r.MeasuredCPL, r.Stats.Cycles, r.Iterations)
	}
	return b.String()
}

// MeasureAX generates and runs the A-process and X-process codes of a
// compiled program (paper §3.6).
func MeasureAX(p *Program, cfg VMConfig, prime func(*CPU) error) (AXMeasurement, error) {
	return ax.Measure(p, cfg, prime)
}

// Extension types: the decomposition-aware bound (the paper's proposed
// "D" degree of freedom), the short-vector extended bound, and the §4.4
// diagnosis engine.
type (
	// LoopShape describes how a kernel drives its inner loop (total
	// elements, entry count, outer scalar estimate).
	LoopShape = core.LoopShape
	// Diagnosis is a ranked list of diagnosed performance losses.
	Diagnosis = advisor.Diagnosis
	// DiagnosisInputs feeds Diagnose.
	DiagnosisInputs = advisor.Inputs
)

// MACSDBoundOf computes the decomposition-aware bound t_MACSD (CPL) of a
// program's inner loop: like t_MACS but with each memory stream's rate
// limited by its bank decomposition.
func MACSDBoundOf(p *Program, vl int, rules Rules) (float64, error) {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return 0, fmt.Errorf("macs: program has no vectorized inner loop")
	}
	return core.MACSDBound(loop.Body, vl, rules).CPL, nil
}

// ExtendedBoundOf computes the short-vector-aware bound t_MACS+ (CPL) of
// a program's inner loop under the given loop shape.
func ExtendedBoundOf(p *Program, shape LoopShape, rules Rules) (float64, error) {
	loop, ok := asm.InnerVectorLoop(p)
	if !ok {
		return 0, fmt.Errorf("macs: program has no vectorized inner loop")
	}
	return core.ExtendedBound(loop.Body, shape, rules).CPL, nil
}

// Diagnose applies the paper's §4.4 gap-analysis rules to a kernel's
// bounds and measurements.
func Diagnose(in DiagnosisInputs) Diagnosis { return advisor.Diagnose(in) }
