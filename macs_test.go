package macs_test

import (
	"math"
	"strings"
	"testing"

	"macs"
)

const quickSrc = `
PROGRAM SAXPY
REAL X(2048), Y(2048), A
INTEGER N, K
DO K = 1, N
  Y(K) = Y(K) + A*X(K)
ENDDO
END
`

func TestAnalyzeSource(t *testing.T) {
	res, err := macs.AnalyzeSource(quickSrc, 1000, func(c *macs.CPU) error {
		m := c.Memory()
		nb, _ := m.SymbolAddr("d_N")
		if err := m.WriteI64(nb, 1000); err != nil {
			return err
		}
		ab, _ := m.SymbolAddr("d_A")
		if err := m.WriteF64(ab, 2.0); err != nil {
			return err
		}
		xb, _ := m.SymbolAddr("d_X")
		yb, _ := m.SymbolAddr("d_Y")
		for i := 0; i < 1000; i++ {
			m.WriteF64(xb+int64(i*8), float64(i))
			m.WriteF64(yb+int64(i*8), 1.0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// saxpy: 1 add, 1 mul, 2 loads, 1 store.
	a := res.Analysis
	if a.MA != (macs.Workload{FA: 1, FM: 1, Loads: 2, Stores: 1}) {
		t.Errorf("MA = %+v", a.MA)
	}
	if a.TMA != 3 || a.TMAC != 3 {
		t.Errorf("bounds: t_MA=%v t_MAC=%v, want 3, 3", a.TMA, a.TMAC)
	}
	if a.MACS.CPL < 3.0 || a.MACS.CPL > 3.3 {
		t.Errorf("t_MACS = %v, want about 3.1", a.MACS.CPL)
	}
	if res.MeasuredCPL < a.MACS.CPL {
		t.Errorf("measured %.3f below bound %.3f", res.MeasuredCPL, a.MACS.CPL)
	}
	rep := res.Report()
	for _, want := range []string{"t_MA", "t_MACS", "measured"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Report missing %q:\n%s", want, rep)
		}
	}
}

func TestMABound(t *testing.T) {
	w, err := macs.MABound(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if w.Flops() != 2 || w.Bound() != 3 {
		t.Errorf("MA = %+v", w)
	}
}

func TestCompileAndMACSBound(t *testing.T) {
	p, err := macs.Compile(quickSrc, macs.DefaultCompilerOptions())
	if err != nil {
		t.Fatal(err)
	}
	cpl, err := macs.MACSBoundOf(p, 128, macs.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if cpl < 3.0 || cpl > 3.3 {
		t.Errorf("t_MACS = %v", cpl)
	}
}

func TestKernelRegistry(t *testing.T) {
	if got := len(macs.Kernels()); got != 10 {
		t.Fatalf("Kernels() = %d, want 10", got)
	}
	k, err := macs.KernelByID(1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := macs.RunKernel(k, macs.DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !r.Validated {
		t.Error("LFK1 output not validated")
	}
	_, _, tmacs, tp := r.CPFs()
	if math.Abs(tmacs-0.840) > 0.001 {
		t.Errorf("t_MACS CPF = %v, want 0.840", tmacs)
	}
	if tp < tmacs {
		t.Errorf("t_p %v below bound %v", tp, tmacs)
	}
}

func TestMeasureAXFacade(t *testing.T) {
	p, err := macs.Compile(quickSrc, macs.DefaultCompilerOptions())
	if err != nil {
		t.Fatal(err)
	}
	m, err := macs.MeasureAX(p, macs.DefaultVMConfig(), func(c *macs.CPU) error {
		nb, _ := c.Memory().SymbolAddr("d_N")
		return c.Memory().WriteI64(nb, 500)
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.TP < m.TA || m.TP < m.TX {
		t.Errorf("t_p=%d below t_a=%d or t_x=%d", m.TP, m.TA, m.TX)
	}
}

func TestParseAsmFacade(t *testing.T) {
	p, err := macs.ParseAsm(".data x 1024\n\tld.l x(a0),v0\n\tadd.d v0,v1,v2")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Instrs) != 2 {
		t.Errorf("parsed %d instrs", len(p.Instrs))
	}
}

func TestAnalyzeSourceErrors(t *testing.T) {
	if _, err := macs.AnalyzeSource("PROGRAM P\nREAL A\nA = 1.0\nEND", 1, nil); err == nil {
		t.Error("loop-free source should fail")
	}
	if _, err := macs.AnalyzeSource("garbage", 1, nil); err == nil {
		t.Error("unparsable source should fail")
	}
}

func TestExtensionFacades(t *testing.T) {
	p, err := macs.Compile(quickSrc, macs.DefaultCompilerOptions())
	if err != nil {
		t.Fatal(err)
	}
	macsCPL, err := macs.MACSBoundOf(p, 128, macs.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	d, err := macs.MACSDBoundOf(p, 128, macs.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if d != macsCPL {
		t.Errorf("unit-stride saxpy: t_MACSD %v != t_MACS %v", d, macsCPL)
	}
	ext, err := macs.ExtendedBoundOf(p, macs.LoopShape{Elements: 1000, Entries: 10, OuterScalarOps: 20}, macs.DefaultRules())
	if err != nil {
		t.Fatal(err)
	}
	if ext < macsCPL {
		t.Errorf("t_MACS+ %v below t_MACS %v", ext, macsCPL)
	}
	// Loop-free program: all three bound facades report the error.
	flat, err := macs.Compile("PROGRAM P\nREAL A\nA = 1.0\nEND", macs.DefaultCompilerOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := macs.MACSBoundOf(flat, 128, macs.DefaultRules()); err == nil {
		t.Error("MACSBoundOf should fail on loop-free code")
	}
	if _, err := macs.MACSDBoundOf(flat, 128, macs.DefaultRules()); err == nil {
		t.Error("MACSDBoundOf should fail on loop-free code")
	}
	if _, err := macs.ExtendedBoundOf(flat, macs.LoopShape{Elements: 1}, macs.DefaultRules()); err == nil {
		t.Error("ExtendedBoundOf should fail on loop-free code")
	}
}
