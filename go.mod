module macs

go 1.22
